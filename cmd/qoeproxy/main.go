// Command qoeproxy runs the SNI-sniffing transparent proxy as a
// long-running inference service: it relays TLS connections to their
// backends, exports one transaction record per connection (CSV and/or
// Squid-format log), delimits each client's sessions online with the
// streaming sessionizer, and — when given a trained model — classifies
// every client's current session periodically during operation, not
// only at shutdown. Runtime state is observable over HTTP: /metrics
// serves Prometheus text format, /healthz a JSON liveness summary.
//
// Usage:
//
//	qoeproxy -listen 127.0.0.1:8443 -upstream 127.0.0.1:9443
//	         [-resolve map.txt] [-out transactions.csv]
//	         [-squid-log access.log] [-model model.json]
//	         [-shadow-model challenger.json]
//	         [-metrics 127.0.0.1:9090] [-classify-every 30s]
//	         [-window 4m] [-client-ttl 1h] [-max-session-txns 4096]
//	         [-shards N] [-classify-workers N] [-classify-batch N]
//	         [-replay workload.csv] [-replay-speed X] [-replay-workers N]
//	         [-source proxy|squid|pcap|netflow|replay] [-input FILE]
//	         [-ingest-speed X] [-ingest-workers N] [-ingest-epoch T]
//	         [-ingest-horizon 5m] [-follow=true]
//	         [-ingest-batch N] [-parse-workers N]
//	         [-cluster-config cluster.json] [-instance-id ID]
//	         [-snapshot state.json] [-restore state.json]
//	         [-v]
//
// The daemon's telemetry arrives through one internal/ingest
// TransactionSource selected with -source: the live proxy (default),
// a tailed Squid access log, a pcap packet trace, a client-attributed
// NetFlow record CSV, or a replay workload CSV — everything downstream
// of the callbacks (sessionization, classification, sinks, metrics) is
// source-agnostic and byte-identical for equivalent inputs. Non-proxy
// sources read -input, do not bind -listen and need no -upstream;
// docs/INGEST.md is the per-source guide.
//
// The resolver map file holds "sni backend:port" lines; unlisted SNIs
// fall back to -upstream. Logs are JSON lines on stderr (-v adds
// per-transaction detail). Per-client memory is bounded: idle clients
// are evicted after -client-ttl (their final classification is
// emitted first) and retained transaction state is capped at
// -max-session-txns, so the daemon's footprint is O(active clients),
// not O(all traffic ever seen). Per-client state is partitioned into
// -shards lock-sharded maps (default GOMAXPROCS) so concurrent
// connections ingest in parallel, and the classify tick fans out
// across shards on a -classify-workers pool, sweeping each shard's
// feature rows through the compiled scorer in contiguous row-major
// blocks of -classify-batch rows; outputs stay ordered through a
// single sink-writer goroutine. With -replay the daemon additionally
// replays a recorded workload CSV (internal/tlsproxy.ReadWorkload)
// straight into the ingest path — same callbacks, logical timestamps —
// at -replay-speed times recorded speed, which is how cmd/qoeload
// drives tens of thousands of simulated clients through the real
// serving loop without a socket per session.
//
// The model is operated like production ML, not loaded once and served
// forever. SIGHUP or POST /admin/reload (loopback callers only, on the
// -metrics listener) re-reads -model (and -shadow-model, if set) and
// swaps the compiled estimator in atomically — each classification
// pass reads the model pointer exactly once, so no sweep ever mixes
// two models, and a corrupt file is rejected with the previous model
// untouched. -shadow-model scores a challenger over the same gathered
// feature rows, reporting disagreement and per-class confusion
// counters without altering a byte of the primary's output. Models
// saved with a training baseline (cmd/qoeinfer -save) additionally
// expose per-feature drift z-scores comparing live traffic against the
// training distribution. Stop with SIGINT/SIGTERM:
// the proxy stops accepting, drains open relays, flushes the
// sessionizers, prints per-client QoE estimates (if -model is given)
// and exits cleanly.
//
// The daemon also runs as one member of a serving fleet:
// -cluster-config/-instance-id load a static consistent-hash ring
// (internal/cluster) so N instances tailing the same telemetry jointly
// cover every client exactly once, each skipping (and counting) the
// clients the ring assigns elsewhere. -snapshot serializes the live
// serving state on shutdown (or POST /admin/snapshot) and -restore
// rebuilds it at startup, so an instance restarts warm — or hands its
// partitions to a peer — with mid-session classifications
// byte-identical to a daemon that never stopped (see snapshot.go).
// docs/OPERATIONS.md is the full runbook.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"droppackets/internal/capture"
	"droppackets/internal/cluster"
	"droppackets/internal/core"
	"droppackets/internal/ingest"
	"droppackets/internal/metrics"
	"droppackets/internal/sessionid"
	"droppackets/internal/squidlog"
	"droppackets/internal/stats"
	"droppackets/internal/tlsproxy"
)

func main() {
	var opts options
	flag.StringVar(&opts.listen, "listen", "127.0.0.1:8443", "address to listen on")
	flag.StringVar(&opts.upstream, "upstream", "", "default backend address (required unless every SNI is mapped)")
	flag.StringVar(&opts.resolve, "resolve", "", "file of 'sni backend:port' mappings")
	flag.StringVar(&opts.outPath, "out", "", "append transaction CSV records to this file")
	flag.StringVar(&opts.squidPath, "squid-log", "", "append Squid-format log lines to this file")
	flag.StringVar(&opts.modelPath, "model", "", "saved model (cmd/qoeinfer -save) for online and shutdown classification")
	flag.StringVar(&opts.shadowPath, "shadow-model", "", "challenger model scored over the same rows as -model; disagreements are counted, output is untouched")
	flag.StringVar(&opts.metricsAddr, "metrics", "127.0.0.1:9090", "address for /metrics and /healthz (empty disables)")
	flag.DurationVar(&opts.classifyEvery, "classify-every", 30*time.Second, "interval between online classification passes (0 disables)")
	flag.DurationVar(&opts.window, "window", 4*time.Minute, "sliding window of transactions classified per pass (0 = whole current session)")
	flag.DurationVar(&opts.clientTTL, "client-ttl", time.Hour, "evict a client's state after this much idle time, emitting its final classification (0 disables; swept on the classify tick)")
	flag.IntVar(&opts.maxSessionTxns, "max-session-txns", 4096, "most transactions retained per client session and summary buffer; oldest are dropped beyond it (0 = unbounded)")
	flag.IntVar(&opts.shards, "shards", 0, "lock shards for per-client state; ingest for clients on different shards never contends (0 = GOMAXPROCS)")
	flag.IntVar(&opts.classifyWorkers, "classify-workers", 0, "goroutines fanning the classify tick across shards (0 = GOMAXPROCS, capped at -shards)")
	flag.IntVar(&opts.classifyBatch, "classify-batch", 256, "feature rows swept per batched inference call in a classification pass (0 = row-at-a-time)")
	flag.StringVar(&opts.replayPath, "replay", "", "replay this workload CSV (see internal/tlsproxy.ReadWorkload) into the ingest path alongside live traffic")
	flag.Float64Var(&opts.replaySpeed, "replay-speed", 0, "time-compression factor for -replay: 1 = recorded speed, 0 = as fast as possible")
	flag.IntVar(&opts.replayWorkers, "replay-workers", 4, "goroutines delivering -replay records (clients are hash-partitioned across them)")
	flag.StringVar(&opts.source, "source", "proxy", "primary telemetry source: proxy|squid|pcap|netflow|replay (docs/INGEST.md)")
	flag.StringVar(&opts.input, "input", "", "input file for a non-proxy -source: Squid access log, pcap trace, flow CSV or workload CSV")
	flag.Float64Var(&opts.ingestSpeed, "ingest-speed", 0, "time-compression factor for file sources: 1 = recorded pace, 0 = as fast as possible")
	flag.IntVar(&opts.ingestWorkers, "ingest-workers", 1, "delivery goroutines for batch file sources (clients hash-partitioned; per-client order preserved)")
	flag.Float64Var(&opts.ingestEpoch, "ingest-epoch", -1, "Unix time mapped to offset 0 for squid/pcap sources (-1 = first event's time)")
	flag.DurationVar(&opts.ingestHorizon, "ingest-horizon", 5*time.Minute, "reordering slack for -source=squid: entries are released once the log's end-time watermark is this far past them")
	flag.BoolVar(&opts.follow, "follow", true, "for -source=squid: keep tailing the log across rotation/truncation (false stops at EOF)")
	flag.IntVar(&opts.ingestBatch, "ingest-batch", 256, "transactions coalesced per shard-batched ingest commit; 0 delivers record-at-a-time")
	flag.IntVar(&opts.parseWorkers, "parse-workers", 1, "for -source=squid: goroutines decoding log lines (output is identical at any setting)")
	flag.StringVar(&opts.clusterConfig, "cluster-config", "", "cluster membership file (internal/cluster JSON); this instance serves only the clients the ring assigns it")
	flag.StringVar(&opts.instanceID, "instance-id", "", "this daemon's id in -cluster-config (required with it)")
	flag.StringVar(&opts.snapshotPath, "snapshot", "", "write the serving state here on shutdown (and on POST /admin/snapshot) instead of printing the shutdown summary")
	flag.StringVar(&opts.restorePath, "restore", "", "restore serving state from this snapshot at startup (missing/corrupt files log and start cold)")
	flag.BoolVar(&opts.verbose, "v", false, "log per-transaction detail (debug level)")
	flag.Parse()
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "qoeproxy:", err)
		os.Exit(1)
	}
}

// options collects every flag so tests can drive run directly.
type options struct {
	listen, upstream, resolve     string
	outPath, squidPath, modelPath string
	shadowPath                    string
	metricsAddr                   string
	classifyEvery, window         time.Duration
	clientTTL                     time.Duration
	maxSessionTxns                int
	shards, classifyWorkers       int
	classifyBatch                 int
	replayPath                    string
	replaySpeed                   float64
	replayWorkers                 int
	source, input                 string
	ingestSpeed                   float64
	ingestWorkers                 int
	ingestEpoch                   float64
	ingestHorizon                 time.Duration
	follow                        bool
	ingestBatch                   int
	parseWorkers                  int
	clusterConfig, instanceID     string
	snapshotPath, restorePath     string
	verbose                       bool
}

// loadResolver builds the SNI->backend mapping.
func loadResolver(path, fallback string) (tlsproxy.Resolver, error) {
	table := map[string]string{}
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		line := 0
		for sc.Scan() {
			line++
			text := strings.TrimSpace(sc.Text())
			if text == "" || strings.HasPrefix(text, "#") {
				continue
			}
			fields := strings.Fields(text)
			if len(fields) != 2 {
				return nil, fmt.Errorf("resolve map line %d: want 'sni backend'", line)
			}
			table[fields[0]] = fields[1]
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
	}
	if fallback == "" && len(table) == 0 {
		return nil, fmt.Errorf("need -upstream or a non-empty -resolve map")
	}
	return func(sni string) (string, error) {
		if addr, ok := table[sni]; ok {
			return addr, nil
		}
		if fallback == "" {
			return "", fmt.Errorf("no backend for SNI %q", sni)
		}
		return fallback, nil
	}, nil
}

// openAppend opens path for appending, creating it if absent, and
// reports whether it was empty (so headers are written exactly once).
func openAppend(path string) (f *os.File, wasEmpty bool, err error) {
	f, err = os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, false, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, false, err
	}
	return f, st.Size() == 0, nil
}

// clientState is everything the service tracks per client address.
type clientState struct {
	streamer *sessionid.Streamer
	// activeStarts maps in-flight connection IDs to their start time in
	// epoch seconds; the minimum is the sessionizer watermark.
	activeStarts map[uint64]float64
	// buffer holds completed transactions not yet safe to hand the
	// (start-ordered) streamer, sorted by Start.
	buffer []capture.TLSTransaction
	// inFlight mirrors the streamer's pending transactions with their
	// byte counts; decisions pop from the front.
	inFlight []capture.TLSTransaction
	// current accumulates the decided transactions of the current
	// session; a detected boundary resets it.
	current []capture.TLSTransaction
	// tracked mirrors current in an incremental feature accumulator
	// (window 0 mode only): classify passes read the maintained vector
	// and fold the still-undecided transactions in speculatively, so a
	// pass costs O(new transactions), not O(session length).
	tracked *core.TrackedSession
	// winTxns is the reusable scratch for a pass's per-client
	// transaction list (the sliding-window filtrate, or the speculative
	// pending list in incremental mode).
	winTxns []capture.TLSTransaction
	// row is the client's reusable feature-row buffer.
	row []float64
	// recent retains the most recent transactions (capped at
	// -max-session-txns) for the shutdown/eviction summary; lifetime
	// aggregates below summarize what the ring has dropped.
	recent *txnRing
	// lastActivity is the latest transaction end (or connection start)
	// in epoch seconds; the eviction sweep compares it to -client-ttl.
	lastActivity float64
	// txns, upBytes and downBytes are lifetime totals; durStats
	// aggregates transaction durations online — all O(1) state.
	txns               int64
	upBytes, downBytes int64
	durStats           stats.Running
	// boundaries counts detected session starts.
	boundaries int64
	// truncated marks that the current session already counted toward
	// qoeproxy_sessions_truncated_total; reset at each boundary.
	truncated bool
	// lastClass is the most recent online classification (hasClass
	// guards it).
	lastClass int
	hasClass  bool
}

// txnRing retains the most recent transactions in arrival order
// within a fixed capacity; limit 0 disables the cap (unbounded).
type txnRing struct {
	limit   int
	buf     []capture.TLSTransaction
	start   int
	dropped int64
}

func newTxnRing(limit int) *txnRing { return &txnRing{limit: limit} }

// push appends t, dropping the oldest retained transaction when the
// ring is full, and reports how many were dropped (0 or 1).
func (r *txnRing) push(t capture.TLSTransaction) int {
	if r.limit <= 0 || len(r.buf) < r.limit {
		r.buf = append(r.buf, t)
		return 0
	}
	r.buf[r.start] = t
	r.start = (r.start + 1) % r.limit
	r.dropped++
	return 1
}

// len reports how many transactions the ring retains.
func (r *txnRing) len() int { return len(r.buf) }

// snapshot appends the retained transactions, oldest first, to dst.
func (r *txnRing) snapshot(dst []capture.TLSTransaction) []capture.TLSTransaction {
	dst = append(dst, r.buf[r.start:]...)
	return append(dst, r.buf[:r.start]...)
}

// capRun bounds a transaction run to limit entries, dropping the
// oldest once it overshoots the limit by half — the slack amortizes
// the copy-down to O(1) per transaction. It reports how many entries
// were dropped.
func capRun(run *[]capture.TLSTransaction, limit int) int {
	if limit <= 0 || len(*run) <= limit+limit/2 {
		return 0
	}
	r := *run
	drop := len(r) - limit
	n := copy(r, r[drop:])
	*run = r[:n]
	return drop
}

// ongoingOrdered invariant: cs.current ++ cs.inFlight ++ cs.buffer is
// the client's ongoing session in start order, with no sort needed.
// The watermark (minimum start among open connections) never
// decreases, transactions are released to the streamer in start order,
// and every buffered transaction starts strictly after every released
// one — so the three runs concatenate sorted. Observed traffic belongs
// to the ongoing session until a boundary says otherwise, which keeps
// a client with one long-lived connection classifiable before any
// look-ahead window ever closes.

// service is the running daemon: proxy plus sessionizers, estimator,
// metrics and log sinks. Per-client state lives in lock shards so
// concurrent connections only contend when their clients hash
// together; everything outside the shards is either immutable after
// startup, atomic, or owned by a single goroutine (the sink writer,
// the classify tick).
type service struct {
	opts options
	log  *slog.Logger
	// model is the serving bundle: the estimator plus everything derived
	// from it (class names, cached counter handles, row builders, shadow
	// scorer, drift tracker). Swapped whole on reload; every consumer
	// Loads it exactly once per pass, so a sweep never mixes two models.
	// Nil when no -model is configured.
	model atomic.Pointer[servingModel]
	// pendingEst/pendingShadow hold the startup estimators between
	// newService and registerMetrics, which builds the first bundle (the
	// cached prediction-counter handles need the registry).
	pendingEst    *core.Estimator
	pendingShadow *core.Estimator
	// reloadMu serializes reloads (SIGHUP racing /admin/reload); the
	// serving path never takes it.
	reloadMu sync.Mutex
	track    bool // maintain incremental accumulators (est set, window 0)
	epoch    time.Time
	// watermark is the latest record event time delivered into the
	// ingest path, in epoch seconds (float bits, CAS-max). For file and
	// replay sources it is the sweep clock: record timestamps are
	// logical, so comparing them against the wall clock would evict
	// clients mid-session at -ingest-speed 100 and never at 0.01.
	watermark atomic.Uint64
	// logicalClock selects the watermark (true: file/replay sources)
	// over wall time (false: live proxy) as the sweep clock.
	logicalClock bool
	// lastRotate is when (sweep clock) the intern tables last rotated;
	// tick goroutine only.
	lastRotate float64
	// debugLog caches whether the logger emits debug records, so the
	// ingest hot path skips building per-transaction attribute lists
	// that a production (info-level) daemon would throw away.
	debugLog bool
	// batchPool recycles the scratch (line buffer, commit list) of
	// onTransactionBatch / onTransaction calls across goroutines.
	batchPool sync.Pool
	proxy     *tlsproxy.Proxy
	// src is the primary TransactionSource feeding the ingest path;
	// its Stats back the qoeproxy_ingest_source_* series. Nil in tests
	// that drive callbacks directly.
	src ingest.TransactionSource
	reg *metrics.Registry

	// ring is the fleet's consistent-hash client assignment and
	// instanceID this daemon's member id; both nil/empty for a
	// standalone daemon. Immutable after run() wires them, so the ingest
	// hot path reads them without synchronization.
	ring       *cluster.Ring
	instanceID string

	// shards partition the per-client state by FNV hash of the client
	// host. Immutable after newService.
	shards []*shard

	mTxns          *metrics.Counter
	mBoundaries    *metrics.Counter
	mRuns          *metrics.Counter
	mClassErrors   *metrics.Counter
	mPred          *metrics.CounterVec
	mReloadOK      *metrics.LabeledCounter
	mReloadError   *metrics.LabeledCounter
	mReloadNoop    *metrics.LabeledCounter
	mShadowDis     *metrics.Counter
	mShadowConf    *metrics.CounterVec2
	mInfer         *metrics.Histogram
	mExtract       *metrics.Histogram
	mShardClassify *metrics.Histogram
	mIngested      *metrics.Counter
	mTruncated     *metrics.Counter
	mSinkFailures  *metrics.Counter
	mEvicted       *metrics.Counter
	mContention    *metrics.Counter
	mSkipped       *metrics.Counter

	out   *sink
	squid *sink
	// sinkCh feeds the single writer goroutine; records enqueue under
	// their shard lock, so each client's lines stay in commit order
	// while the hot path never blocks on file I/O.
	sinkCh   chan sinkMsg
	sinkDone chan struct{}
	sinkStop sync.Once
}

// shard owns one partition of the per-client state: its mutex guards
// the map and every clientState (and its sessionizer/accumulator)
// reached through it.
type shard struct {
	mu      sync.Mutex
	clients map[string]*clientState

	// Classify scratch, reused across passes. During one pass exactly
	// one worker visits each shard (forEachShard hands out shard indices
	// exclusively), so these need no lock of their own: the gather phase
	// fills them under mu, the sweep reads them after release — and
	// nothing else ever touches them.
	cNames   []string
	cCounts  []int
	cRows    [][]float64 // row-at-a-time path (-classify-batch 0)
	cBlock   []float64   // row-major block, cap(cNames) x stride
	cProbs   []float64   // per-sweep probability scratch
	cClasses []int
	cShadow  []int // challenger classes over the same rows (-shadow-model)
}

// newService assembles the daemon state around the given options,
// normalising the concurrency knobs and starting the sink writer.
// The caller attaches the proxy and calls registerMetrics before
// serving traffic.
func newService(opts options, logger *slog.Logger, est *core.Estimator) *service {
	if opts.shards <= 0 {
		opts.shards = runtime.GOMAXPROCS(0)
	}
	if opts.classifyWorkers <= 0 {
		opts.classifyWorkers = runtime.GOMAXPROCS(0)
	}
	if opts.classifyWorkers > opts.shards {
		opts.classifyWorkers = opts.shards
	}
	s := &service{
		opts:       opts,
		log:        logger,
		pendingEst: est,
		epoch:      time.Now(),
		debugLog:   logger.Enabled(context.Background(), slog.LevelDebug),
	}
	s.batchPool.New = func() any { return &batchScratch{} }
	if est != nil {
		s.track = opts.window <= 0
	}
	s.logicalClock = (opts.source != "" && opts.source != "proxy") || opts.replayPath != ""
	s.shards = make([]*shard, opts.shards)
	for i := range s.shards {
		s.shards[i] = &shard{clients: map[string]*clientState{}}
	}
	s.startSinkWriter()
	return s
}

// servingModel bundles one model with everything derived from it, so a
// reload swaps all of it atomically: a pass that Loaded the old bundle
// finishes on the old estimator, names and counters; the next pass sees
// the new ones. Nothing in a bundle is mutated after Store except the
// drift tracker, which is internally locked.
type servingModel struct {
	est   *core.Estimator
	names []string // class display names
	// predClass caches the per-class prediction-counter handles, aligned
	// with names. The underlying CounterVec children outlive reloads, so
	// counts keep accumulating across models with the same metric.
	predClass []*metrics.LabeledCounter
	// rowBuilders hold one extraction scratch per classify worker
	// (windowed mode); worker w exclusively uses rowBuilders[w].
	rowBuilders []*core.RowBuilder
	// shadow is the challenger state, nil without -shadow-model.
	shadow *shadowState
	// drift compares classified rows against the model's training
	// baseline, nil when the model file carries none (version 1).
	drift *driftTracker
	// loadedAt stamps the swap for qoeproxy_model_loaded_timestamp_seconds.
	loadedAt time.Time
}

// shadowState is the champion/challenger comparison: a second compiled
// estimator swept over the same gathered rows as the primary, with the
// outcome recorded only in counters — never in logs, sinks or stored
// classifications.
type shadowState struct {
	est *core.Estimator
	// confusion caches the nc×nc confusion-counter handles,
	// primary-major: cell [p*nc+c] counts rows the primary called p and
	// the challenger called c (p != c).
	confusion []*metrics.LabeledCounter
}

// driftTracker accumulates per-feature population stats over every row
// a pass classifies and compares them against the model's training
// baseline. Shard workers fold whole row blocks under one mutex — a
// few calls per pass, so contention is negligible next to inference.
type driftTracker struct {
	mu       sync.Mutex
	names    []string // subset-space feature names
	baseMean []float64
	baseStd  []float64
	obs      []stats.Running
}

func newDriftTracker(names []string, means, stds []float64) *driftTracker {
	return &driftTracker{names: names, baseMean: means, baseStd: stds, obs: make([]stats.Running, len(names))}
}

// observeBlock folds n row-major rows of the given stride into the
// per-feature accumulators.
func (d *driftTracker) observeBlock(block []float64, n, stride int) {
	d.mu.Lock()
	for r := 0; r < n; r++ {
		row := block[r*stride : (r+1)*stride]
		for j := range row {
			d.obs[j].Observe(row[j])
		}
	}
	d.mu.Unlock()
}

// observeRows is observeBlock for the row-at-a-time (-classify-batch 0)
// gather path.
func (d *driftTracker) observeRows(rows [][]float64) {
	d.mu.Lock()
	for _, row := range rows {
		for j := range row {
			d.obs[j].Observe(row[j])
		}
	}
	d.mu.Unlock()
}

// zscores snapshots the drift gauge children: for each feature,
// (observed mean − baseline mean) / baseline std. Features with a
// degenerate (zero-variance) baseline report 0 rather than ±Inf; so do
// features with no observations yet.
func (d *driftTracker) zscores() ([]string, []float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	zs := make([]float64, len(d.names))
	for j := range d.names {
		if d.obs[j].N() == 0 || d.baseStd[j] <= 0 {
			continue
		}
		zs[j] = (d.obs[j].Mean() - d.baseMean[j]) / d.baseStd[j]
	}
	return d.names, zs
}

// validateShadow checks a challenger against the primary: the shadow
// sweep reuses the primary's gathered rows and compares class indices
// one-to-one, so the feature subset and the metric must match.
func validateShadow(primary, shadow *core.Estimator) error {
	if shadow.Metric() != primary.Metric() {
		return fmt.Errorf("shadow model targets metric %d, primary targets %d", shadow.Metric(), primary.Metric())
	}
	if shadow.Subset() != primary.Subset() || shadow.NumFeatures() != primary.NumFeatures() {
		return fmt.Errorf("shadow model uses feature subset %d (%d features), primary uses %d (%d)",
			shadow.Subset(), shadow.NumFeatures(), primary.Subset(), primary.NumFeatures())
	}
	return nil
}

// buildModel assembles a serving bundle around freshly loaded
// estimators. Called with the registry's vec families already
// registered (registerMetrics for the first bundle, reloadModel after).
func (s *service) buildModel(est, shadow *core.Estimator) (*servingModel, error) {
	if est == nil {
		return nil, nil
	}
	m := &servingModel{
		est:      est,
		names:    core.ClassNames(est.Metric()),
		loadedAt: time.Now(),
	}
	m.predClass = make([]*metrics.LabeledCounter, len(m.names))
	for i, n := range m.names {
		m.predClass[i] = s.mPred.WithLabel(n)
	}
	if !s.track {
		m.rowBuilders = make([]*core.RowBuilder, s.opts.classifyWorkers)
		for i := range m.rowBuilders {
			m.rowBuilders[i] = est.NewRowBuilder()
		}
	}
	if shadow != nil {
		if err := validateShadow(est, shadow); err != nil {
			return nil, err
		}
		nc := est.NumClasses()
		ss := &shadowState{est: shadow, confusion: make([]*metrics.LabeledCounter, nc*nc)}
		for p := 0; p < nc; p++ {
			for c := 0; c < nc; c++ {
				ss.confusion[p*nc+c] = s.mShadowConf.WithLabels(m.names[p], m.names[c])
			}
		}
		m.shadow = ss
	}
	if means, stds := est.Baseline(); means != nil {
		m.drift = newDriftTracker(est.FeatureNames(), means, stds)
	}
	return m, nil
}

// loadEstimatorFile opens and loads one saved model file.
func loadEstimatorFile(path string) (*core.Estimator, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.LoadEstimator(f)
}

// reloadModel re-reads -model (and -shadow-model) from disk and swaps
// the serving bundle. Any failure — unreadable file, corrupt model,
// incompatible shadow — leaves the previous bundle serving untouched.
// With no -model configured the request is a safe no-op, so a habitual
// `kill -HUP` on a record-only daemon does nothing. Returns the result
// label recorded in qoeproxy_model_reloads_total.
func (s *service) reloadModel() (string, error) {
	if s.opts.modelPath == "" {
		s.mReloadNoop.Inc()
		s.log.Info("model reload requested with no -model configured; nothing to do")
		return "noop", nil
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	est, err := loadEstimatorFile(s.opts.modelPath)
	var shadow *core.Estimator
	if err == nil && s.opts.shadowPath != "" {
		shadow, err = loadEstimatorFile(s.opts.shadowPath)
	}
	var m *servingModel
	if err == nil {
		m, err = s.buildModel(est, shadow)
	}
	if err != nil {
		s.mReloadError.Inc()
		s.log.Error("model reload failed; previous model still serving",
			"model", s.opts.modelPath, "err", err)
		return "error", err
	}
	s.model.Store(m)
	s.mReloadOK.Inc()
	s.log.Info("model reloaded", "model", s.opts.modelPath,
		"shadow", s.opts.shadowPath, "features", est.NumFeatures(),
		"drift_baseline", m.drift != nil)
	return "ok", nil
}

// noteEventTime advances the ingest watermark (CAS-max on float bits)
// to a record's event time in epoch seconds.
func (s *service) noteEventTime(t float64) {
	for {
		old := s.watermark.Load()
		if math.Float64frombits(old) >= t {
			return
		}
		if s.watermark.CompareAndSwap(old, math.Float64bits(t)) {
			return
		}
	}
}

// sweepNow converts a tick's wall time to the sweep clock in epoch
// seconds: the ingest watermark for file and replay sources (whose
// record timestamps are logical and scaled by -ingest-speed or
// -replay-speed, so the -window cutoff and -client-ttl comparisons
// must use the records' own timescale), wall time for the live proxy.
func (s *service) sweepNow(now time.Time) float64 {
	if s.logicalClock {
		return math.Float64frombits(s.watermark.Load())
	}
	return now.Sub(s.epoch).Seconds()
}

// shardIndex hashes a client host onto a shard with inline FNV-1a —
// no allocation, stable across runs so tests can pin placements.
func shardIndex(client string, n int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(client); i++ {
		h ^= uint32(client[i])
		h *= prime32
	}
	return int(h % uint32(n))
}

// shardFor returns the shard owning a client's state.
func (s *service) shardFor(client string) *shard {
	return s.shards[shardIndex(client, len(s.shards))]
}

// lockIngest takes a shard's lock from the ingest path, counting
// acquisitions that had to wait in qoeproxy_ingest_contention_total —
// the signal that -shards needs raising.
func (s *service) lockIngest(sh *shard) {
	if sh.mu.TryLock() {
		return
	}
	s.mContention.Inc()
	sh.mu.Lock()
}

// sink is one transaction-record output (CSV or Squid log) with its
// failure-burst state: failing flips on the first failed write and
// back off on the first success, so each burst logs exactly once and
// /healthz can report the degradation while it lasts. Only the writer
// goroutine writes; failing is atomic so /healthz can read it without
// a lock.
type sink struct {
	w       io.Writer
	name    string
	failing atomic.Bool
}

// sinkMsg is one unit of sink-writer work: a record line for a sink,
// or (when sync is non-nil) a flush marker the writer acknowledges by
// closing the channel.
type sinkMsg struct {
	k    *sink
	line string
	sync chan struct{}
}

// startSinkWriter launches the single goroutine that performs all
// sink I/O, in enqueue order.
func (s *service) startSinkWriter() {
	s.sinkCh = make(chan sinkMsg, 1024)
	s.sinkDone = make(chan struct{})
	go func() {
		defer close(s.sinkDone)
		for m := range s.sinkCh {
			if m.sync != nil {
				close(m.sync)
				continue
			}
			s.writeSink(m.k, m.line)
		}
	}()
}

// enqueueSink hands one record line to the writer goroutine. Callers
// enqueue under their shard lock so a client's lines keep commit
// order; a full channel applies backpressure to that shard only.
func (s *service) enqueueSink(k *sink, line string) {
	s.sinkCh <- sinkMsg{k: k, line: line}
}

// flushSinks blocks until every record enqueued before the call has
// been written (or counted as failed).
func (s *service) flushSinks() {
	done := make(chan struct{})
	s.sinkCh <- sinkMsg{sync: done}
	<-done
}

// stopSinkWriter drains the queue and stops the writer goroutine.
// Idempotent; no enqueues may follow.
func (s *service) stopSinkWriter() {
	s.sinkStop.Do(func() {
		close(s.sinkCh)
		<-s.sinkDone
	})
}

// writeSink appends one record line to a sink, counting failed writes
// in qoeproxy_sink_write_failures_total. Runs only on the writer
// goroutine.
func (s *service) writeSink(k *sink, line string) {
	if _, err := io.WriteString(k.w, line); err != nil {
		s.mSinkFailures.Inc()
		if !k.failing.Swap(true) {
			s.log.Error("sink write failing, records dropped until it recovers",
				"sink", k.name, "err", err)
		}
		return
	}
	if k.failing.Swap(false) {
		s.log.Info("sink recovered", "sink", k.name)
	}
}

// sinksDegraded reports whether any configured sink is currently in a
// failure burst.
func (s *service) sinksDegraded() bool {
	return (s.out != nil && s.out.failing.Load()) || (s.squid != nil && s.squid.failing.Load())
}

// run wires the service together and blocks until SIGINT/SIGTERM or a
// listener error.
func run(opts options) error {
	level := slog.LevelInfo
	if opts.verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	source := opts.source
	if source == "" {
		source = "proxy"
	}
	switch source {
	case "proxy", "squid", "pcap", "netflow", "replay":
	default:
		return fmt.Errorf("-source %q: want proxy, squid, pcap, netflow or replay", source)
	}
	if source != "proxy" && opts.input == "" {
		return fmt.Errorf("-source %s needs -input", source)
	}
	if (opts.clusterConfig == "") != (opts.instanceID == "") {
		return fmt.Errorf("-cluster-config and -instance-id must be given together")
	}
	var ring *cluster.Ring
	if opts.clusterConfig != "" {
		cfg, err := cluster.LoadConfigFile(opts.clusterConfig)
		if err != nil {
			return err
		}
		if ring, err = cluster.New(cfg); err != nil {
			return err
		}
		if !ring.Has(opts.instanceID) {
			return fmt.Errorf("-instance-id %q is not a member of %s", opts.instanceID, opts.clusterConfig)
		}
	}

	var resolver tlsproxy.Resolver
	if source == "proxy" {
		var err error
		resolver, err = loadResolver(opts.resolve, opts.upstream)
		if err != nil {
			return err
		}
	} else {
		// File sources never dial a backend; the stub keeps the proxy's
		// stats bridges alive without requiring -upstream.
		resolver = tlsproxy.StaticResolver("127.0.0.1:9")
	}

	// Validate every output path and the model BEFORE binding the
	// listener: a daemon that accepts traffic and then dies on a bad
	// -out path would leave clients mid-relay and files half-written.
	var est, shadowEst *core.Estimator
	if opts.modelPath != "" {
		var err error
		if est, err = loadEstimatorFile(opts.modelPath); err != nil {
			return err
		}
	}
	if opts.shadowPath != "" {
		if est == nil {
			return fmt.Errorf("-shadow-model needs -model")
		}
		var err error
		if shadowEst, err = loadEstimatorFile(opts.shadowPath); err != nil {
			return fmt.Errorf("-shadow-model: %w", err)
		}
		if err := validateShadow(est, shadowEst); err != nil {
			return fmt.Errorf("-shadow-model: %w", err)
		}
	}
	var replayRecs []tlsproxy.ReplayRecord
	if opts.replayPath != "" {
		f, err := os.Open(opts.replayPath)
		if err != nil {
			return fmt.Errorf("-replay: %w", err)
		}
		replayRecs, err = tlsproxy.ReadWorkload(f)
		f.Close()
		if err != nil {
			return err
		}
		if len(replayRecs) == 0 {
			return fmt.Errorf("-replay: workload %s is empty", opts.replayPath)
		}
	}
	s := newService(opts, logger, est)
	s.pendingShadow = shadowEst
	defer s.stopSinkWriter()
	if ring != nil {
		s.ring, s.instanceID = ring, opts.instanceID
		logger.Info("cluster membership loaded", "instance", opts.instanceID,
			"config", opts.clusterConfig, "instances", len(ring.Instances()),
			"partitions_owned", ring.Partitions(opts.instanceID),
			"partitions_total", ring.TotalPartitions())
	}
	// Restore precedes every source and sink construction: the adopted
	// epoch must be in place before any component derives offsets from
	// it, and the restored shards before any record commits.
	if opts.restorePath != "" {
		s.restoreFromFile(opts.restorePath)
	}
	if opts.outPath != "" {
		f, empty, err := openAppend(opts.outPath)
		if err != nil {
			return fmt.Errorf("-out: %w", err)
		}
		defer f.Close()
		if empty {
			if _, err := fmt.Fprintln(f, "session,sni,start,end,up_bytes,down_bytes"); err != nil {
				return fmt.Errorf("-out: writing header: %w", err)
			}
		}
		s.out = &sink{w: f, name: "out"}
	}
	if opts.squidPath != "" {
		f, _, err := openAppend(opts.squidPath)
		if err != nil {
			return fmt.Errorf("-squid-log: %w", err)
		}
		defer f.Close()
		s.squid = &sink{w: f, name: "squid-log"}
	}

	// Build the primary TransactionSource. Proxy mode serves live
	// traffic; file sources feed the same callbacks from disk. Either
	// way a tlsproxy.Proxy exists (a stub for file sources) so the
	// proxy-stats metric bridges and /healthz stay live.
	var src ingest.TransactionSource
	var ps *ingest.ProxySource
	switch source {
	case "proxy":
		var err error
		ps, err = ingest.NewProxySource(tlsproxy.Config{Resolver: resolver})
		if err != nil {
			return err
		}
		s.proxy = ps.Proxy()
		src = ps
	case "squid":
		// Fail fast on an unreadable log before serving starts; the
		// tailer itself tolerates rotation gaps later.
		f, err := os.Open(opts.input)
		if err != nil {
			return fmt.Errorf("-input: %w", err)
		}
		f.Close()
		src = &ingest.SquidSource{
			Path:         opts.input,
			Base:         s.epoch,
			EpochUnix:    opts.ingestEpoch,
			Horizon:      opts.ingestHorizon.Seconds(),
			Follow:       opts.follow,
			ParseWorkers: opts.parseWorkers,
			Batch:        opts.ingestBatch,
		}
	case "pcap":
		bs, err := ingest.NewPcapSource(opts.input, s.epoch, opts.ingestEpoch, opts.ingestSpeed, opts.ingestWorkers)
		if err != nil {
			return err
		}
		bs.Batch = opts.ingestBatch
		src = bs
	case "netflow":
		bs, err := ingest.NewNetflowSource(opts.input, s.epoch, opts.ingestSpeed, opts.ingestWorkers)
		if err != nil {
			return err
		}
		bs.Batch = opts.ingestBatch
		src = bs
	case "replay":
		bs, err := ingest.NewReplaySource(opts.input, s.epoch, opts.ingestSpeed, opts.ingestWorkers)
		if err != nil {
			return err
		}
		bs.Batch = opts.ingestBatch
		src = bs
	}
	if s.proxy == nil {
		stub, err := tlsproxy.New(tlsproxy.Config{Resolver: resolver})
		if err != nil {
			return err
		}
		s.proxy = stub
	}
	s.src = src
	s.registerMetrics()

	// Outputs validated, model loaded: now bind (proxy mode only; file
	// sources accept no traffic).
	if ps != nil {
		l, err := net.Listen("tcp", opts.listen)
		if err != nil {
			return err
		}
		ps.Listener = l
		logger.Info("listening", "addr", l.Addr().String())
	}

	// The source goroutine sends only fatal errors to errCh; benign
	// completion (a file source finishing its input) logs and leaves
	// the daemon serving metrics until a signal arrives.
	srcCtx, srcCancel := context.WithCancel(context.Background())
	defer srcCancel()
	errCh := make(chan error, 1)
	runDone := make(chan struct{})
	runStart := time.Now()
	if ps == nil {
		logger.Info("ingesting", "source", src.Name(), "input", opts.input)
	}
	// A positive -ingest-batch selects shard-batched delivery: records
	// arrive coalesced and each shard lock is taken once per batch. Zero
	// keeps the record-at-a-time path (useful for bisecting and as the
	// reference ordering in tests).
	handler := ingest.Handler{ConnOpen: s.onConnOpen}
	if opts.ingestBatch > 0 {
		handler.TransactionBatch = s.onTransactionBatch
	} else {
		handler.Transaction = s.onTransaction
	}
	go func() {
		defer close(runDone)
		err := src.Run(srcCtx, handler)
		if srcCtx.Err() != nil {
			return
		}
		if err != nil {
			errCh <- err
			return
		}
		st := src.Stats()
		wall := time.Since(runStart).Seconds()
		logger.Info("ingest complete", "source", src.Name(),
			"records", st.Records, "clients", st.Clients,
			"skipped", st.Skipped, "malformed", st.Malformed,
			"wall_seconds", wall, "records_per_second", float64(st.Records)/wall)
	}()
	stopSource := func() {
		srcCancel()
		<-runDone
	}

	var httpSrv *http.Server
	if opts.metricsAddr != "" {
		ml, err := net.Listen("tcp", opts.metricsAddr)
		if err != nil {
			stopSource()
			return fmt.Errorf("-metrics: %w", err)
		}
		httpSrv = &http.Server{Handler: s.httpHandler()}
		go func() {
			if err := httpSrv.Serve(ml); err != nil && err != http.ErrServerClosed {
				logger.Error("metrics server", "err", err)
			}
		}()
		logger.Info("metrics listening", "addr", ml.Addr().String())
	}

	// The tick drives both classification passes and the idle-client
	// eviction sweep, so it runs whenever either needs it.
	var tick <-chan time.Time
	if opts.classifyEvery > 0 && (est != nil || opts.clientTTL > 0) {
		ticker := time.NewTicker(opts.classifyEvery)
		defer ticker.Stop()
		tick = ticker.C
	}

	stopHTTP := func() {}
	if httpSrv != nil {
		stopHTTP = func() {
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			httpSrv.Shutdown(ctx)
			cancel()
		}
	}

	// stopAux is everything serveLoop must halt before draining: the
	// replay source first (no ingest may follow drain), then the metrics
	// endpoint.
	stopAux := stopHTTP
	if len(replayRecs) > 0 {
		rctx, rcancel := context.WithCancel(context.Background())
		replayDone := make(chan struct{})
		src := &tlsproxy.RecordSource{
			Records: replayRecs,
			Speed:   opts.replaySpeed,
			Workers: opts.replayWorkers,
		}
		logger.Info("replaying workload", "path", opts.replayPath,
			"records", len(replayRecs), "speed", opts.replaySpeed, "workers", src.Workers)
		go func() {
			defer close(replayDone)
			var st tlsproxy.ReplayStats
			if opts.ingestBatch > 0 {
				st = src.RunBatched(rctx, s.epoch, s.onConnOpen, s.onTransactionBatch, opts.ingestBatch)
			} else {
				st = src.Run(rctx, s.epoch, s.onConnOpen, s.onTransaction)
			}
			attrs := []any{"records", st.Records, "clients", st.Clients,
				"wall_seconds", st.Wall.Seconds(),
				"records_per_second", float64(st.Records) / st.Wall.Seconds()}
			if rctx.Err() != nil {
				logger.Info("replay cancelled", attrs...)
				return
			}
			logger.Info("replay complete", attrs...)
		}()
		stopAux = func() {
			rcancel()
			<-replayDone
			stopHTTP()
		}
	}

	// SIGHUP is registered alongside the shutdown signals: unregistered
	// its default disposition would kill the daemon on a conventional
	// `kill -HUP` log-rotation sweep; registered it triggers a model
	// reload (a no-op when -model is unset).
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	defer signal.Stop(sig)
	return s.serveLoop(errCh, tick, sig, stopSource, stopAux)
}

// serveLoop is the daemon's main loop: it reacts to fatal source
// errors, classification/eviction ticks, SIGHUP model reloads and
// shutdown signals. Ticks are converted to the sweep clock (wall or
// ingest watermark) before classifyPass/evictIdle see them. Both
// exits — source death and a signal — stop the primary source, then
// stopAux (the legacy -replay source, then the metrics endpoint),
// before draining the sessionizers, so no ingest follows the drain and
// pending decisions and the shutdown summary are never lost to a
// crash-landing listener.
func (s *service) serveLoop(errCh <-chan error, tick <-chan time.Time, sig <-chan os.Signal, stopSource, stopAux func()) error {
	for {
		select {
		case err := <-errCh:
			stopSource()
			stopAux()
			s.shutdownState()
			return err
		case now := <-tick:
			ns := s.sweepNow(now)
			s.classifyPass(ns)
			s.evictIdle(ns)
		case got := <-sig:
			if got == syscall.SIGHUP {
				// Reload, not shutdown. Errors are already counted and
				// logged; the previous model keeps serving.
				s.reloadModel()
				continue
			}
			s.log.Info("shutting down", "signal", got.String())
			// Stop the source: in proxy mode that stops accepting and
			// drains open relays (their final records arrive through
			// onTransaction before Run returns); file sources flush their
			// reorder buffers. Then stop replay and the metrics endpoint.
			stopSource()
			stopAux()
			s.shutdownState()
			return nil
		}
	}
}

// shutdownState finishes the serving state after ingest has stopped:
// with -snapshot it serializes the state for a warm restart or peer
// handoff — deliberately NOT flushing the sessionizers or printing the
// per-client summary, because those finalizations belong to whichever
// instance ends each session, and emitting them here too would
// double-count against the successor. Queued sink lines still flush
// (they are already-committed records). Without -snapshot, or if the
// write fails, the classic drain runs so a shutdown never silently
// loses the summary.
func (s *service) shutdownState() {
	if s.opts.snapshotPath != "" {
		clients, err := s.writeSnapshotFile(s.opts.snapshotPath)
		if err == nil {
			s.log.Info("state snapshot written", "path", s.opts.snapshotPath,
				"clients", clients, "trigger", "shutdown")
			s.stopSinkWriter()
			return
		}
		s.log.Error("snapshot failed; draining instead", "path", s.opts.snapshotPath, "err", err)
	}
	s.drain()
}

// classifyBuckets are the histogram bounds for the classification-pass
// latency series. The batched per-shard sweep finishes typical passes
// in well under a millisecond, where metrics.DefBuckets (lowest bound
// 5ms) would lump everything into one bucket; spanning 50µs to 2.5s
// keeps p50/p95/p99 estimates meaningful from an idle shard to a
// pathological stall.
var classifyBuckets = []float64{
	50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5,
}

// memSampler caches runtime.ReadMemStats so the scrape-time runtime
// bridges share one stop-the-world sample per ~100ms instead of taking
// one each per scrape.
type memSampler struct {
	mu sync.Mutex
	at time.Time
	ms runtime.MemStats
}

func (m *memSampler) read() runtime.MemStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if now := time.Now(); m.at.IsZero() || now.Sub(m.at) > 100*time.Millisecond {
		runtime.ReadMemStats(&m.ms)
		m.at = now
	}
	return m.ms
}

// registerMetrics declares every exported series. The full reference
// table lives in docs/OPERATIONS.md; keep the two in sync.
func (s *service) registerMetrics() {
	r := metrics.NewRegistry()
	s.reg = r
	s.mTxns = r.NewCounter("qoeproxy_transactions_total",
		"Completed TLS transactions (one per relayed connection).")
	s.mBoundaries = r.NewCounter("qoeproxy_session_boundaries_total",
		"Session starts detected by the online sessionizer.")
	s.mRuns = r.NewCounter("qoeproxy_classification_runs_total",
		"Periodic classification passes that completed successfully.")
	s.mClassErrors = r.NewCounter("qoeproxy_classification_errors_total",
		"Periodic classification passes that failed (model/feature mismatch).")
	s.mPred = r.NewCounterVec("qoeproxy_qoe_predictions_total",
		"Online QoE predictions by class.", "class")
	// Model-lifecycle series. The reload results are pre-declared so
	// dashboards see zeros before the first reload; the per-class
	// prediction and confusion handles are cached per serving bundle.
	mReloads := r.NewCounterVec("qoeproxy_model_reloads_total",
		"Model reload attempts (SIGHUP or /admin/reload) by result: ok = new model serving, error = rejected with the previous model untouched, noop = no -model configured.", "result")
	s.mReloadOK = mReloads.WithLabel("ok")
	s.mReloadError = mReloads.WithLabel("error")
	s.mReloadNoop = mReloads.WithLabel("noop")
	r.NewGaugeFunc("qoeproxy_model_loaded_timestamp_seconds",
		"Unix time the serving model was loaded or last reloaded (0 = no model).", func() float64 {
			if m := s.model.Load(); m != nil {
				return float64(m.loadedAt.UnixNano()) / 1e9
			}
			return 0
		})
	s.mShadowDis = r.NewCounter("qoeproxy_shadow_disagreement_total",
		"Classified rows where the -shadow-model challenger disagreed with the primary model.")
	s.mShadowConf = r.NewCounterVec2("qoeproxy_shadow_confusion_total",
		"Primary/challenger confusion cells for disagreeing rows (-shadow-model).", "primary", "shadow")
	mDrift := r.NewGaugeVecFunc("qoeproxy_feature_drift_zscore",
		"Per-feature drift of classified traffic against the model's training baseline: (observed mean - training mean) / training std. Requires a model saved with a baseline.", "feature")
	mDrift.Set(func() ([]string, []float64) {
		m := s.model.Load()
		if m == nil || m.drift == nil {
			return nil, nil
		}
		return m.drift.zscores()
	})
	r.NewGaugeFunc("qoeproxy_interned_strings",
		"Distinct client/SNI strings held by the ingest source's intern tables (0 for sources that do not intern).", func() float64 {
			if in, ok := s.src.(ingest.Interner); ok {
				return float64(in.InternedStrings())
			}
			return 0
		})
	s.mInfer = r.NewHistogram("qoeproxy_inference_seconds",
		"Latency of the model-prediction half of one classification pass (summed across shard sweeps).", classifyBuckets)
	s.mExtract = r.NewHistogram("qoeproxy_feature_extraction_seconds",
		"Latency of building every client's feature row in one classification pass (summed across shards).", classifyBuckets)
	s.mIngested = r.NewCounter("qoeproxy_feature_transactions_ingested_total",
		"Transactions folded into the incremental per-session feature accumulators.")
	s.mTruncated = r.NewCounter("qoeproxy_sessions_truncated_total",
		"Client sessions whose retained transaction state hit -max-session-txns and dropped oldest entries.")
	s.mSinkFailures = r.NewCounter("qoeproxy_sink_write_failures_total",
		"Transaction records lost because a -out/-squid-log write failed.")
	s.mEvicted = r.NewCounter("qoeproxy_clients_evicted_total",
		"Clients evicted after -client-ttl of idleness, final classification emitted.")
	s.mContention = r.NewCounter("qoeproxy_ingest_contention_total",
		"Ingest lock acquisitions that found their shard already held; a rising rate means -shards is too low.")
	// Fleet-operation series: the instance identity, the partitions this
	// member owns (summed across members they equal the ring total, so
	// coverage is verifiable from scrapes alone) and the records skipped
	// because the ring assigns their client elsewhere.
	s.mSkipped = r.NewCounter("qoeproxy_cluster_clients_skipped_total",
		"Transaction records skipped because the cluster ring assigns their client to another instance (0 standalone).")
	r.NewGaugeFunc("qoeproxy_partitions_owned",
		"Consistent-hash partitions (virtual ring points) this instance owns; the fleet-wide sum equals the ring's partition total exactly when coverage is 100% (0 standalone).", func() float64 {
			if s.ring == nil {
				return 0
			}
			return float64(s.ring.Partitions(s.instanceID))
		})
	mInstance := r.NewGaugeVecFunc("qoeproxy_instance_info",
		"Identity of this daemon in the serving fleet; constant 1 with the instance id as a label.", "instance")
	mInstance.Set(func() ([]string, []float64) {
		if s.instanceID == "" {
			return nil, nil
		}
		return []string{s.instanceID}, []float64{1}
	})
	s.mShardClassify = r.NewHistogram("qoeproxy_shard_classify_seconds",
		"Per-shard latency of one classification pass: row gather under the shard lock plus the batched inference sweep outside it.", classifyBuckets)
	// Per-source ingest counters, sampled from the primary source's
	// Stats. The families always render (operators alert on series
	// existence); children appear for the active source.
	mSrcRecords := r.NewCounterVecFunc("qoeproxy_ingest_source_records_total",
		"Transactions delivered into the ingest path, by source.", "source")
	mSrcSkipped := r.NewCounterVecFunc("qoeproxy_ingest_source_skipped_total",
		"Out-of-scope input units dropped by a source (non-CONNECT log lines, unresolved flows), by source.", "source")
	mSrcMalformed := r.NewCounterVecFunc("qoeproxy_ingest_source_malformed_total",
		"Unparseable input units dropped by a streaming source, by source.", "source")
	mSrcRotations := r.NewCounterVecFunc("qoeproxy_ingest_source_rotations_total",
		"Log rotations and truncations a tailing source survived, by source.", "source")
	if s.src != nil {
		name := s.src.Name()
		src := s.src
		mSrcRecords.With(name, func() int64 { return src.Stats().Records })
		mSrcSkipped.With(name, func() int64 { return src.Stats().Skipped })
		mSrcMalformed.With(name, func() int64 { return src.Stats().Malformed })
		mSrcRotations.With(name, func() int64 { return src.Stats().Rotations })
	}
	r.NewCounterFunc("qoeproxy_connections_total",
		"Client connections accepted.", func() int64 { return s.proxy.Stats().TotalConnections })
	r.NewGaugeFunc("qoeproxy_connections_active",
		"Client connections currently relayed.", func() float64 { return float64(s.proxy.Stats().ActiveConnections) })
	r.NewCounterFunc("qoeproxy_hello_parse_failures_total",
		"Connections dropped: ClientHello missing, timed out or unparseable.", func() int64 { return s.proxy.Stats().HelloFailures })
	r.NewCounterFunc("qoeproxy_resolve_failures_total",
		"Connections dropped: no backend for the SNI.", func() int64 { return s.proxy.Stats().ResolveFailures })
	r.NewCounterFunc("qoeproxy_dial_failures_total",
		"Connections dropped: backend dial failed.", func() int64 { return s.proxy.Stats().DialFailures })
	r.NewCounterFunc("qoeproxy_relayed_up_bytes_total",
		"Bytes relayed client to server.", func() int64 { return s.proxy.Stats().RelayedUpBytes })
	r.NewCounterFunc("qoeproxy_relayed_down_bytes_total",
		"Bytes relayed server to client.", func() int64 { return s.proxy.Stats().RelayedDownBytes })
	r.NewGaugeFunc("qoeproxy_active_sessions",
		"Clients with transactions in their current (ongoing) session.", func() float64 {
			n := 0
			for _, sh := range s.shards {
				sh.mu.Lock()
				for _, cs := range sh.clients {
					if len(cs.current)+len(cs.inFlight)+len(cs.buffer) > 0 {
						n++
					}
				}
				sh.mu.Unlock()
			}
			return float64(n)
		})
	r.NewGaugeFunc("qoeproxy_clients",
		"Distinct client addresses seen.", func() float64 {
			return float64(s.clientCount())
		})
	r.NewGaugeFunc("qoeproxy_uptime_seconds",
		"Seconds since the proxy started.", func() float64 { return time.Since(s.epoch).Seconds() })
	// Runtime memory and scheduler health, for correlating classify-tick
	// latency and ingest throughput with GC pressure under load.
	mem := &memSampler{}
	r.NewFloatCounterFunc("qoeproxy_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause time.", func() float64 {
			return float64(mem.read().PauseTotalNs) / 1e9
		})
	r.NewCounterFunc("qoeproxy_gc_runs_total",
		"Completed GC cycles.", func() int64 { return int64(mem.read().NumGC) })
	r.NewCounterFunc("qoeproxy_heap_alloc_bytes_total",
		"Cumulative bytes allocated on the heap.", func() int64 { return int64(mem.read().TotalAlloc) })
	r.NewGaugeFunc("qoeproxy_heap_inuse_bytes",
		"Bytes in in-use heap spans.", func() float64 { return float64(mem.read().HeapInuse) })
	r.NewGaugeFunc("qoeproxy_goroutines",
		"Live goroutines.", func() float64 { return float64(runtime.NumGoroutine()) })

	// The first serving bundle installs here rather than in newService:
	// the cached prediction/confusion handles need the registry. run()
	// validates the estimator pair before newService, so a build failure
	// can only mean a caller wired an incompatible pair directly — serve
	// the primary alone rather than die.
	m, err := s.buildModel(s.pendingEst, s.pendingShadow)
	if err != nil {
		s.log.Error("shadow model incompatible; serving without it", "err", err)
		m, _ = s.buildModel(s.pendingEst, nil)
	}
	s.model.Store(m)
}

// httpHandler serves /metrics, /healthz and the loopback-only admin
// plane (/admin/reload).
func (s *service) httpHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", s.reg.Handler())
	mux.HandleFunc("/admin/reload", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		// Authenticated by locality: -metrics may be bound wide for
		// scrapers, but mutating the serving model is reserved for
		// operators on the box itself.
		host, _, err := net.SplitHostPort(r.RemoteAddr)
		if err != nil || !isLoopbackHost(host) {
			http.Error(w, "reload is loopback-only", http.StatusForbidden)
			return
		}
		result, rerr := s.reloadModel()
		status := http.StatusOK
		body := map[string]any{"result": result}
		if rerr != nil {
			status = http.StatusUnprocessableEntity
			body["error"] = rerr.Error()
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(body)
	})
	mux.HandleFunc("/admin/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		// Loopback-only like /admin/reload: serializing the serving state
		// to disk is an operator action, not a scraper's.
		host, _, err := net.SplitHostPort(r.RemoteAddr)
		if err != nil || !isLoopbackHost(host) {
			http.Error(w, "snapshot is loopback-only", http.StatusForbidden)
			return
		}
		if s.opts.snapshotPath == "" {
			http.Error(w, "no -snapshot path configured", http.StatusUnprocessableEntity)
			return
		}
		clients, werr := s.writeSnapshotFile(s.opts.snapshotPath)
		status := http.StatusOK
		body := map[string]any{"path": s.opts.snapshotPath, "clients": clients}
		if werr != nil {
			status = http.StatusInternalServerError
			body = map[string]any{"error": werr.Error()}
		} else {
			s.log.Info("state snapshot written", "path", s.opts.snapshotPath, "clients", clients, "trigger", "admin")
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(body)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		st := s.proxy.Stats()
		clients := s.clientCount()
		degraded := s.sinksDegraded()
		status := "ok"
		if degraded {
			status = "degraded"
		}
		partitions := 0
		if s.ring != nil {
			partitions = s.ring.Partitions(s.instanceID)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status":              status,
			"instance":            s.instanceID,
			"partitions_owned":    partitions,
			"clients_skipped":     s.mSkipped.Value(),
			"uptime_seconds":      time.Since(s.epoch).Seconds(),
			"active_connections":  st.ActiveConnections,
			"total_connections":   st.TotalConnections,
			"clients":             clients,
			"clients_evicted":     s.mEvicted.Value(),
			"sink_write_failures": s.mSinkFailures.Value(),
		})
	})
	return mux
}

// isLoopbackHost reports whether an address host is loopback (IPv4
// 127/8, IPv6 ::1).
func isLoopbackHost(host string) bool {
	ip := net.ParseIP(host)
	return ip != nil && ip.IsLoopback()
}

// clientCount sums the distinct clients across all shards.
func (s *service) clientCount() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.clients)
		sh.mu.Unlock()
	}
	return n
}

// state returns (creating if needed) the per-client state; the caller
// holds the shard's lock, and the shard must be the client's.
func (s *service) state(sh *shard, client string) *clientState {
	cs, ok := sh.clients[client]
	if !ok {
		cs = &clientState{
			streamer:     sessionid.NewStreamer(sessionid.PaperParams),
			activeStarts: map[uint64]float64{},
			recent:       newTxnRing(s.opts.maxSessionTxns),
		}
		if s.track {
			cs.tracked = core.NewTrackedSession()
		}
		sh.clients[client] = cs
	}
	return cs
}

// owns reports whether this instance serves a client: always true for
// a standalone daemon, the ring's verdict in a fleet. The filter lives
// here in the callbacks — not in the sources — so skipped records
// still advance the ingest watermark (the logical sweep clock): a
// fleet member owning few clients of a replayed workload must still
// see time pass, or its eviction and window cutoffs would stall.
func (s *service) owns(client string) bool {
	return s.ring == nil || s.ring.Owns(s.instanceID, client)
}

// onConnOpen records an in-flight connection so the sessionizer knows
// not to advance past its start time until it completes.
func (s *service) onConnOpen(r tlsproxy.Record) {
	client := clientHost(r.ClientAddr)
	start := r.Start.Sub(s.epoch).Seconds()
	s.noteEventTime(start)
	if !s.owns(client) {
		return // counted once per record in the transaction callbacks
	}
	sh := s.shardFor(client)
	s.lockIngest(sh)
	defer sh.mu.Unlock()
	cs := s.state(sh, client)
	cs.activeStarts[r.ConnID] = start
	if start > cs.lastActivity {
		cs.lastActivity = start
	}
}

// appendOutLine renders one CSV sink record onto dst, matching the
// historical fmt verbs ("%s,%s,%.3f,%.3f,%d,%d\n") byte for byte.
func appendOutLine(dst []byte, client string, txn capture.TLSTransaction) []byte {
	dst = append(dst, client...)
	dst = append(dst, ',')
	dst = append(dst, txn.SNI...)
	dst = append(dst, ',')
	dst = strconv.AppendFloat(dst, txn.Start, 'f', 3, 64)
	dst = append(dst, ',')
	dst = strconv.AppendFloat(dst, txn.End, 'f', 3, 64)
	dst = append(dst, ',')
	dst = strconv.AppendInt(dst, txn.UpBytes, 10)
	dst = append(dst, ',')
	dst = strconv.AppendInt(dst, txn.DownBytes, 10)
	return append(dst, '\n')
}

// txnCommit is one record's phase-two work in a batched delivery: the
// state mutation that must run under the client's shard lock.
type txnCommit struct {
	si     int
	connID uint64
	client string
	txn    capture.TLSTransaction
}

// batchScratch is the reusable per-call scratch of the transaction
// ingest path, pooled so steady state allocates only the sink line
// strings themselves.
type batchScratch struct {
	buf     []byte
	commits []txnCommit
}

// debugTransaction logs per-transaction detail; the caller guards with
// s.debugLog so an info-level daemon never builds the attribute list.
func (s *service) debugTransaction(r tlsproxy.Record, client string) {
	s.log.Debug("transaction",
		"sni", r.SNI, "client", client, "conn_id", r.ConnID,
		"duration_s", r.End.Sub(r.Start).Seconds(), "up_bytes", r.UpBytes, "down_bytes", r.DownBytes)
}

// onTransaction exports a completed transaction to the configured
// sinks and feeds the client's online sessionizer. Record conversion,
// line formatting and logging happen before the shard lock; only the
// state mutation and the sink enqueue (which preserves the client's
// record order) run under it.
func (s *service) onTransaction(r tlsproxy.Record) {
	client := clientHost(r.ClientAddr)
	if !s.owns(client) {
		s.noteEventTime(r.End.Sub(s.epoch).Seconds())
		s.mSkipped.Inc()
		return
	}
	txn := tlsproxy.ToCaptureTransaction(r, s.epoch)
	s.mTxns.Inc()
	var outLine, squidLine string
	if s.out != nil || s.squid != nil {
		sc := s.batchPool.Get().(*batchScratch)
		buf := sc.buf
		if s.out != nil {
			buf = appendOutLine(buf[:0], client, txn)
			outLine = string(buf)
		}
		if s.squid != nil {
			buf = append(squidlog.AppendEntry(buf[:0], client, txn, float64(s.epoch.Unix())), '\n')
			squidLine = string(buf)
		}
		sc.buf = buf
		s.batchPool.Put(sc)
	}
	if s.debugLog {
		s.debugTransaction(r, client)
	}

	sh := s.shardFor(client)
	s.lockIngest(sh)
	defer sh.mu.Unlock()
	if outLine != "" {
		s.enqueueSink(s.out, outLine)
	}
	if squidLine != "" {
		s.enqueueSink(s.squid, squidLine)
	}
	s.commitTransaction(sh, client, r.ConnID, txn)
}

// onTransactionBatch is onTransaction for a coalesced record batch,
// split into two phases. Phase one walks the batch in delivery order
// with no locks held: counters, sink lines (built in a pooled buffer
// and enqueued immediately — order is preserved because one source
// goroutine delivers all of a client's records, and the writer drains
// in enqueue order), debug logs. Phase two commits per-client state
// grouped by shard, taking each shard's lock once per batch instead of
// once per record; within a shard, commits apply in delivery order.
func (s *service) onTransactionBatch(recs []tlsproxy.Record) {
	sc := s.batchPool.Get().(*batchScratch)
	commits := sc.commits[:0]
	buf := sc.buf
	epochUnix := float64(s.epoch.Unix())
	for _, r := range recs {
		client := clientHost(r.ClientAddr)
		if !s.owns(client) {
			s.noteEventTime(r.End.Sub(s.epoch).Seconds())
			s.mSkipped.Inc()
			continue
		}
		txn := tlsproxy.ToCaptureTransaction(r, s.epoch)
		s.mTxns.Inc()
		if s.out != nil {
			buf = appendOutLine(buf[:0], client, txn)
			s.enqueueSink(s.out, string(buf))
		}
		if s.squid != nil {
			buf = append(squidlog.AppendEntry(buf[:0], client, txn, epochUnix), '\n')
			s.enqueueSink(s.squid, string(buf))
		}
		if s.debugLog {
			s.debugTransaction(r, client)
		}
		commits = append(commits, txnCommit{
			si:     shardIndex(client, len(s.shards)),
			connID: r.ConnID,
			client: client,
			txn:    txn,
		})
	}
	done := 0
	for si := 0; si < len(s.shards) && done < len(commits); si++ {
		sh := s.shards[si]
		locked := false
		for ci := range commits {
			c := &commits[ci]
			if c.si != si {
				continue
			}
			if !locked {
				s.lockIngest(sh)
				locked = true
			}
			s.commitTransaction(sh, c.client, c.connID, c.txn)
			done++
		}
		if locked {
			sh.mu.Unlock()
		}
	}
	sc.buf, sc.commits = buf, commits
	s.batchPool.Put(sc)
}

// commitTransaction folds one completed transaction into its client's
// state and advances the sessionizer. The caller holds the client's
// shard lock; sink lines and the transaction counter are the caller's
// business.
func (s *service) commitTransaction(sh *shard, client string, connID uint64, txn capture.TLSTransaction) {
	cs := s.state(sh, client)
	s.noteEventTime(txn.End)
	if txn.End > cs.lastActivity {
		cs.lastActivity = txn.End
	}
	cs.txns++
	cs.upBytes += txn.UpBytes
	cs.downBytes += txn.DownBytes
	cs.durStats.Observe(txn.End - txn.Start)
	if cs.recent.push(txn) > 0 {
		s.noteTruncation(cs)
	}
	delete(cs.activeStarts, connID)
	// Insert sorted by start: connections end out of order, the
	// sessionizer wants start order.
	i := sort.Search(len(cs.buffer), func(j int) bool { return cs.buffer[j].Start > txn.Start })
	cs.buffer = append(cs.buffer, capture.TLSTransaction{})
	copy(cs.buffer[i+1:], cs.buffer[i:])
	cs.buffer[i] = txn
	// A single long-lived connection can pin the watermark while later
	// transactions pile up behind it; the reorder buffer is capped like
	// every other per-client run.
	if capRun(&cs.buffer, s.opts.maxSessionTxns) > 0 {
		s.noteTruncation(cs)
	}
	s.advance(client, cs)
}

// noteTruncation counts a client's current session toward
// qoeproxy_sessions_truncated_total, once per session. The caller
// holds the client's shard lock.
func (s *service) noteTruncation(cs *clientState) {
	if !cs.truncated {
		cs.truncated = true
		s.mTruncated.Inc()
	}
}

// advance pushes every buffered transaction at or before the client's
// watermark — the earliest start among still-open connections — into
// the streaming sessionizer and applies the resulting decisions. The
// caller holds the client's shard lock.
func (s *service) advance(client string, cs *clientState) {
	watermark := func() (float64, bool) {
		if len(cs.activeStarts) == 0 {
			return 0, false // no open connections: everything is safe
		}
		min := false
		m := 0.0
		for _, start := range cs.activeStarts {
			if !min || start < m {
				m, min = start, true
			}
		}
		return m, true
	}
	wm, bounded := watermark()
	for len(cs.buffer) > 0 {
		if bounded && cs.buffer[0].Start > wm {
			break
		}
		txn := cs.buffer[0]
		cs.buffer = append(cs.buffer[:0], cs.buffer[1:]...)
		cs.inFlight = append(cs.inFlight, txn)
		decisions := cs.streamer.Push(sessionid.Transaction{Start: txn.Start, End: txn.End, SNI: txn.SNI})
		s.apply(client, cs, decisions)
	}
}

// apply consumes finalized sessionizer decisions: boundaries close the
// current session, decided transactions join it. The caller holds the
// client's shard lock.
func (s *service) apply(client string, cs *clientState, decisions []sessionid.Decision) {
	for _, d := range decisions {
		full := cs.inFlight[0]
		cs.inFlight = append(cs.inFlight[:0], cs.inFlight[1:]...)
		if d.NewSession {
			cs.boundaries++
			s.mBoundaries.Inc()
			if s.debugLog {
				s.log.Debug("session boundary", "client", client, "boundaries", cs.boundaries,
					"closed_session_txns", len(cs.current))
			}
			cs.current = cs.current[:0]
			cs.truncated = false
			if cs.tracked != nil {
				cs.tracked.Reset()
			}
		}
		cs.current = append(cs.current, full)
		if cs.tracked != nil {
			cs.tracked.Observe(full)
			s.mIngested.Inc()
		}
	}
	if capRun(&cs.current, s.opts.maxSessionTxns) > 0 {
		s.noteTruncation(cs)
		if cs.tracked != nil {
			// The accumulator only grows, so rebuild it over the capped
			// session; classifications keep matching a batch extraction
			// of exactly the retained transactions.
			cs.tracked.Reset()
			cs.tracked.ObserveAll(cs.current)
		}
	}
}

// forEachShard runs fn(worker, shardIndex) for every shard, fanning
// across the -classify-workers pool. Worker indices are stable and
// exclusive within one call, so fn may use per-worker scratch (the
// rowBuilders). With one worker it runs inline, shards in order.
func (s *service) forEachShard(fn func(worker, si int)) {
	workers := s.opts.classifyWorkers
	if workers > len(s.shards) {
		workers = len(s.shards)
	}
	if workers <= 1 {
		for si := range s.shards {
			fn(0, si)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for si := range idx {
				fn(w, si)
			}
		}(w)
	}
	for si := range s.shards {
		idx <- si
	}
	close(idx)
	wg.Wait()
}

// classifyPass classifies every client's ongoing session, updating
// prediction counters, the latency histograms and the structured log.
// nowSec is the sweep clock in epoch seconds (see sweepNow). The pass
// fans out across shards on the classify-worker pool: each shard's
// feature rows are gathered into one contiguous row-major block under
// that shard's lock only — ingest on other shards never stalls — and
// then swept through the compiled scorer's batched predictor outside
// the lock, -classify-batch rows per call (0 falls back to the
// row-at-a-time predictor). The per-shard results merge in shard order
// and sort by client, so logs, counters and stored classes are
// identical at every (shards, workers, batch) setting. Safe to call
// concurrently with traffic.
//
// The serving bundle is Loaded exactly once, up front: a reload landing
// mid-pass takes effect at the next pass, never inside one. When the
// bundle carries a shadow challenger, the gathered rows are additionally
// swept through it and compared row-for-row — counters only, nothing in
// the primary's output changes. When it carries a drift tracker, the
// gathered rows are folded into the per-feature running stats.
func (s *service) classifyPass(nowSec float64) {
	m := s.model.Load()
	if m == nil {
		return
	}
	cutoff := nowSec - s.opts.window.Seconds()
	stride := m.est.NumFeatures()
	nc := m.est.NumClasses()
	batch := s.opts.classifyBatch
	var buildNanos, sweepNanos atomic.Int64
	var errMu sync.Mutex
	var passErr error
	s.forEachShard(func(worker, si int) {
		sh := s.shards[si]
		t0 := time.Now()
		sh.cNames = sh.cNames[:0]
		sh.cCounts = sh.cCounts[:0]
		sh.cRows = sh.cRows[:0]
		sh.cBlock = sh.cBlock[:0]
		sh.mu.Lock()
		for client, cs := range sh.clients {
			var row []float64
			var n int
			if s.track {
				row, n = s.incrementalRow(m, cs)
			} else {
				row, n = s.windowedRow(m, worker, cs, cutoff)
			}
			if n == 0 {
				continue
			}
			sh.cNames = append(sh.cNames, client)
			sh.cCounts = append(sh.cCounts, n)
			if batch > 0 {
				sh.cBlock = append(sh.cBlock, row...)
			} else {
				sh.cRows = append(sh.cRows, row)
			}
		}
		sh.mu.Unlock()
		build := time.Since(t0)
		buildNanos.Add(int64(build))

		// Sweep the gathered block outside the shard lock; ingest can
		// proceed while inference runs.
		t1 := time.Now()
		rows := len(sh.cNames)
		if cap(sh.cClasses) < rows {
			sh.cClasses = make([]int, rows)
		}
		sh.cClasses = sh.cClasses[:rows]
		var err error
		if batch > 0 {
			if cap(sh.cProbs) < batch*nc {
				sh.cProbs = make([]float64, batch*nc)
			}
			for lo := 0; lo < rows && err == nil; lo += batch {
				hi := lo + batch
				if hi > rows {
					hi = rows
				}
				err = m.est.ClassifyBlockInto(sh.cBlock[lo*stride:hi*stride],
					hi-lo, sh.cProbs[:(hi-lo)*nc], sh.cClasses[lo:hi])
			}
		} else if rows > 0 {
			var classes []int
			classes, err = m.est.ClassifyRows(sh.cRows)
			if err == nil {
				copy(sh.cClasses, classes)
			}
		}
		// The challenger sweeps the same rows after the primary; its only
		// output is counters, so a shadow failure never fails the pass.
		if m.shadow != nil && err == nil {
			if cap(sh.cShadow) < rows {
				sh.cShadow = make([]int, rows)
			}
			sh.cShadow = sh.cShadow[:rows]
			if serr := s.shadowSweep(m, sh, rows, stride, nc, batch); serr != nil {
				s.log.Error("shadow classification failed", "err", serr)
				sh.cShadow = sh.cShadow[:0]
			}
		} else {
			sh.cShadow = sh.cShadow[:0]
		}
		if m.drift != nil && err == nil {
			if batch > 0 {
				m.drift.observeBlock(sh.cBlock, rows, stride)
			} else {
				m.drift.observeRows(sh.cRows)
			}
		}
		sweep := time.Since(t1)
		sweepNanos.Add(int64(sweep))
		s.mShardClassify.Observe((build + sweep).Seconds())
		if err != nil {
			errMu.Lock()
			if passErr == nil {
				passErr = err
			}
			errMu.Unlock()
		}
	})
	var names []string
	var classes, counts, shadowClasses []int
	shadowOK := m.shadow != nil
	for _, sh := range s.shards {
		names = append(names, sh.cNames...)
		classes = append(classes, sh.cClasses...)
		counts = append(counts, sh.cCounts...)
		if len(sh.cShadow) != len(sh.cNames) {
			shadowOK = false // a shard's shadow sweep failed; skip comparison
		}
		shadowClasses = append(shadowClasses, sh.cShadow...)
	}
	if len(names) == 0 {
		return
	}
	s.mExtract.Observe(time.Duration(buildNanos.Load()).Seconds())
	s.mInfer.Observe(time.Duration(sweepNanos.Load()).Seconds())
	if passErr != nil {
		s.mClassErrors.Inc()
		s.log.Error("classification failed", "err", passErr)
		return
	}
	// Champion/challenger comparison: order-independent counter bumps,
	// done on the pre-sort merge so the sort below stays three-column.
	if shadowOK {
		for i, p := range classes {
			if c := shadowClasses[i]; c != p {
				s.mShadowDis.Inc()
				m.shadow.confusion[p*nc+c].Inc()
			}
		}
	}
	s.mRuns.Inc()
	sort.Sort(byName{names, classes, counts})
	for i, client := range names {
		sh := s.shardFor(client)
		sh.mu.Lock()
		if cs, ok := sh.clients[client]; ok {
			cs.lastClass, cs.hasClass = classes[i], true
		}
		sh.mu.Unlock()
	}
	for i, client := range names {
		m.predClass[classes[i]].Inc()
		s.log.Info("classification", "client", client, "class", m.names[classes[i]], "transactions", counts[i])
	}
}

// shadowSweep runs the challenger over a shard's already-gathered rows
// into sh.cShadow, mirroring the primary's batched/row-at-a-time split.
func (s *service) shadowSweep(m *servingModel, sh *shard, rows, stride, nc, batch int) error {
	if batch > 0 {
		for lo := 0; lo < rows; lo += batch {
			hi := lo + batch
			if hi > rows {
				hi = rows
			}
			if err := m.shadow.est.ClassifyBlockInto(sh.cBlock[lo*stride:hi*stride],
				hi-lo, sh.cProbs[:(hi-lo)*nc], sh.cShadow[lo:hi]); err != nil {
				return err
			}
		}
		return nil
	}
	if rows == 0 {
		return nil
	}
	classes, err := m.shadow.est.ClassifyRows(sh.cRows)
	if err != nil {
		return err
	}
	copy(sh.cShadow, classes)
	return nil
}

// incrementalRow builds a client's feature row from its maintained
// accumulator, folding the still-undecided transactions (inFlight and
// buffer, which follow the decided ones in start order) in
// speculatively so the row covers the whole ongoing session. The
// caller holds the client's shard lock; TrackedRow touches only the
// session's own accumulator, so shards proceed in parallel. The
// accumulator holds the full feature vector, so the pass's bundle m
// projects its own subset regardless of which model ingested the
// transactions — reloads across subsets stay correct.
func (s *service) incrementalRow(m *servingModel, cs *clientState) ([]float64, int) {
	cs.winTxns = append(cs.winTxns[:0], cs.inFlight...)
	cs.winTxns = append(cs.winTxns, cs.buffer...)
	n := cs.tracked.Len() + len(cs.winTxns)
	if n == 0 {
		return nil, 0
	}
	cs.row = m.est.TrackedRow(cs.tracked, cs.winTxns, cs.row)
	return cs.row, n
}

// windowedRow builds a client's feature row over the transactions of
// the ongoing session ending inside the sliding window, reusing the
// client's scratch list and row buffer. The caller holds the client's
// shard lock; extraction goes through the worker's private RowBuilder
// (the estimator's shared scratch is not concurrency-safe).
func (s *service) windowedRow(m *servingModel, worker int, cs *clientState, cutoff float64) ([]float64, int) {
	w := cs.winTxns[:0]
	for _, run := range [3][]capture.TLSTransaction{cs.current, cs.inFlight, cs.buffer} {
		for _, t := range run {
			if t.End >= cutoff {
				w = append(w, t)
			}
		}
	}
	cs.winTxns = w
	if len(w) == 0 {
		return nil, 0
	}
	cs.row = m.rowBuilders[worker].FeatureRow(w, cs.row)
	return cs.row, len(w)
}

// byName sorts the classification results by client for deterministic
// logs and tests.
type byName struct {
	names   []string
	classes []int
	counts  []int
}

func (b byName) Len() int { return len(b.names) }
func (b byName) Swap(i, j int) {
	b.names[i], b.names[j] = b.names[j], b.names[i]
	b.classes[i], b.classes[j] = b.classes[j], b.classes[i]
	b.counts[i], b.counts[j] = b.counts[j], b.counts[i]
}
func (b byName) Less(i, j int) bool { return b.names[i] < b.names[j] }

// evictIdle removes every client whose last activity predates
// -client-ttl and has no open connections: the client's streamer is
// flushed (finalizing pending decisions), its final classification is
// emitted to the log and prediction counters, and its state is
// deleted — keeping the clients map O(active clients). nowSec is the
// sweep clock in epoch seconds (see sweepNow) — record-derived for
// file/replay sources, so the TTL comparison shares the timescale of
// the lastActivity values it is compared against. Runs on the classify
// tick, after classifyPass, on the same goroutine (the estimator's
// scratch buffers are not concurrency-safe). The sweep also rotates
// the ingest source's intern tables at most once per TTL, so released
// client state releases its interned strings too.
func (s *service) evictIdle(nowSec float64) {
	s.rotateInterned(nowSec)
	ttl := s.opts.clientTTL
	if ttl <= 0 {
		return
	}
	type evictee struct {
		client     string
		txns       []capture.TLSTransaction
		total      int64
		boundaries int64
		meanDur    float64
		downBytes  int64
	}
	perShard := make([][]evictee, len(s.shards))
	s.forEachShard(func(_, si int) {
		sh := s.shards[si]
		sh.mu.Lock()
		for client, cs := range sh.clients {
			if len(cs.activeStarts) > 0 || nowSec-cs.lastActivity < ttl.Seconds() {
				continue
			}
			s.advance(client, cs)
			s.apply(client, cs, cs.streamer.Flush())
			perShard[si] = append(perShard[si], evictee{
				client:     client,
				txns:       cs.recent.snapshot(nil),
				total:      cs.txns,
				boundaries: cs.boundaries,
				meanDur:    cs.durStats.Mean(),
				downBytes:  cs.downBytes,
			})
			delete(sh.clients, client)
			s.mEvicted.Inc()
		}
		sh.mu.Unlock()
	})
	var gone []evictee
	for _, g := range perShard {
		gone = append(gone, g...)
	}
	sort.Slice(gone, func(i, j int) bool { return gone[i].client < gone[j].client })
	// Final classifications run sequentially on the tick goroutine: the
	// estimator's Classify scratch is per-call, but the sorted order
	// keeps logs and counters deterministic across shard counts. One
	// bundle Load covers the whole sweep, like classifyPass.
	m := s.model.Load()
	for _, e := range gone {
		attrs := []any{"client", e.client, "transactions", e.total,
			"boundaries", e.boundaries, "down_bytes", e.downBytes,
			"mean_txn_seconds", e.meanDur}
		if m != nil && len(e.txns) > 0 {
			class, err := m.est.Classify(e.txns)
			if err != nil {
				s.log.Error("eviction classification failed", "client", e.client, "err", err)
			} else {
				m.predClass[class].Inc()
				attrs = append(attrs, "class", m.names[class])
			}
		}
		s.log.Info("client evicted", attrs...)
	}
}

// rotateInterned ties interned-string release to client eviction: when
// the source interns (squid tail), its tables rotate at most once per
// -client-ttl of sweep-clock time, so a string is released only after
// one to two TTLs of idleness — the same horizon on which its client's
// state is reclaimed. Tick goroutine only.
func (s *service) rotateInterned(nowSec float64) {
	ttl := s.opts.clientTTL
	if ttl <= 0 {
		return
	}
	in, ok := s.src.(ingest.Interner)
	if !ok {
		return
	}
	if nowSec-s.lastRotate < ttl.Seconds() {
		return
	}
	s.lastRotate = nowSec
	in.ReleaseIdleInterned()
}

// drain finishes the sessionizers after the proxy has stopped, stops
// the sink writer (flushing queued records) and prints the per-client
// shutdown summary in client order.
func (s *service) drain() {
	var clients []string
	for _, sh := range s.shards {
		sh.mu.Lock()
		for c, cs := range sh.clients {
			clients = append(clients, c)
			// All connections have ended; the watermark is unbounded.
			s.advance(c, cs)
			s.apply(c, cs, cs.streamer.Flush())
		}
		sh.mu.Unlock()
	}
	s.stopSinkWriter()
	m := s.model.Load()
	if m == nil {
		return
	}
	sort.Strings(clients)
	for _, c := range clients {
		sh := s.shardFor(c)
		sh.mu.Lock()
		cs := sh.clients[c]
		// The summary classifies the retained ring — the whole history
		// for clients under -max-session-txns, the most recent slice
		// beyond it (lifetime counts still report the full totals).
		txns := cs.recent.snapshot(nil)
		total, boundaries := cs.txns, cs.boundaries
		sh.mu.Unlock()
		if len(txns) == 0 {
			continue
		}
		class, err := m.est.Classify(txns)
		if err != nil {
			s.log.Error("shutdown classification failed", "client", c, "err", err)
			continue
		}
		fmt.Printf("client %-22s sessions-qoe=%s (%d transactions, %d boundaries)\n",
			c, m.names[class], total, boundaries)
	}
}

// clientHost strips the port from a client address. Bare addresses —
// including bare IPv6 like "::1", which a naive LastIndex(":") cut
// would mangle to "::" — pass through unchanged.
func clientHost(addr string) string {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return addr
	}
	return host
}
