package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"droppackets/internal/core"
	"droppackets/internal/dataset"
	"droppackets/internal/has"
	"droppackets/internal/ml/forest"
	"droppackets/internal/qoe"
	"droppackets/internal/tlsproxy"
)

// invariantRun captures everything about a replay that must not depend
// on the shard or worker count: the ordered classification and eviction
// emissions, the deterministic metric totals, and the sink bytes.
// Timing histograms, uptime and the contention counter are excluded by
// construction — they measure the concurrency, not the traffic.
type invariantRun struct {
	classifications []string
	evictions       []string
	counters        map[string]int64
	sinkCSV         string
}

// replayTrace feeds a fixed multi-client trace through a service built
// with the given shard/worker counts, running classification passes
// mid-replay and an eviction sweep at the end, and returns the
// invariant observables. The replay itself is single-goroutine, so the
// sink enqueue order — and therefore the flushed sink bytes — is fully
// determined by the trace. A non-nil shadow rides along as the
// champion/challenger scorer; its disagreement total is recorded under
// the "shadow_disagreement" counter key (absent without a shadow, so
// compareRuns against a shadowless baseline ignores it).
func replayTrace(t *testing.T, est *core.Estimator, traffic *dataset.Corpus, window time.Duration, shards, workers, batch int, shadow *core.Estimator) invariantRun {
	t.Helper()
	const numClients = 6
	const ttl = 120 * time.Second

	s, logs := newTestService(t, options{
		window:          window,
		clientTTL:       ttl,
		maxSessionTxns:  64,
		shards:          shards,
		classifyWorkers: workers,
		classifyBatch:   batch,
	}, est, shadow)
	var csv bytes.Buffer
	s.out = &sink{w: &csv, name: "out"}

	// Interleave the sessions across clients globally by start time so
	// consecutive records hit different shards.
	type event struct {
		client string
		rec    tlsproxy.Record
	}
	var events []event
	var connID uint64
	lastEnd := 0.0
	for i, r := range traffic.Records {
		client := fmt.Sprintf("10.7.0.%d", i%numClients+1)
		for _, txn := range r.Capture.TLS {
			connID++
			events = append(events, event{client: client, rec: tlsproxy.Record{
				ConnID:     connID,
				SNI:        txn.SNI,
				ClientAddr: client + ":40000",
				Start:      s.epoch.Add(time.Duration(txn.Start * float64(time.Second))),
				End:        s.epoch.Add(time.Duration(txn.End * float64(time.Second))),
				UpBytes:    txn.UpBytes,
				DownBytes:  txn.DownBytes,
			}})
			if txn.End > lastEnd {
				lastEnd = txn.End
			}
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].rec.Start.Before(events[j].rec.Start) })

	for i, e := range events {
		s.onConnOpen(e.rec)
		s.onTransaction(e.rec)
		if i == len(events)/3 || i == 2*len(events)/3 {
			s.classifyPass(e.rec.End.Sub(s.epoch).Seconds())
		}
	}
	endOfTrace := s.epoch.Add(time.Duration(lastEnd * float64(time.Second)))
	s.classifyPass(endOfTrace.Sub(s.epoch).Seconds())
	s.evictIdle(endOfTrace.Add(ttl + time.Second).Sub(s.epoch).Seconds())
	s.flushSinks()

	run := invariantRun{counters: map[string]int64{
		"transactions": s.mTxns.Value(),
		"boundaries":   s.mBoundaries.Value(),
		"runs":         s.mRuns.Value(),
		"class_errors": s.mClassErrors.Value(),
		"ingested":     s.mIngested.Value(),
		"truncated":    s.mTruncated.Value(),
		"evicted":      s.mEvicted.Value(),
		"clients_left": int64(s.clientCount()),
	}, sinkCSV: csv.String()}
	for _, n := range s.model.Load().names {
		run.counters["pred_"+n] = s.mPred.Value(n)
	}
	if shadow != nil {
		run.counters["shadow_disagreement"] = s.mShadowDis.Value()
	}
	for _, line := range logs.lines() {
		if line == "" {
			continue
		}
		var e struct {
			Msg          string `json:"msg"`
			Client       string `json:"client"`
			Class        string `json:"class"`
			Transactions int64  `json:"transactions"`
		}
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("log line is not JSON: %q", line)
		}
		switch e.Msg {
		case "classification":
			run.classifications = append(run.classifications,
				fmt.Sprintf("%s=%s/%d", e.Client, e.Class, e.Transactions))
		case "client evicted":
			run.evictions = append(run.evictions,
				fmt.Sprintf("%s=%s/%d", e.Client, e.Class, e.Transactions))
		}
	}
	return run
}

// TestShardInvariance is the determinism acceptance test for the
// sharded serving path: the same trace replayed at every point of the
// shard × worker matrix, in both row-building modes, must produce
// identical classification sequences, eviction summaries, metric
// totals and sink output. scripts/check.sh runs it under -race, which
// also exercises the classify fan-out and the sink writer goroutine.
// invarianceFixtures trains the small estimator and builds the traffic
// corpus the invariance replays share.
func invarianceFixtures(t *testing.T) (*core.Estimator, *dataset.Corpus) {
	t.Helper()
	trainCorpus, err := dataset.Build(dataset.Config{Seed: 5, Sessions: 60}, has.Svc1())
	if err != nil {
		t.Fatal(err)
	}
	var training []core.TrainingSession
	for _, r := range trainCorpus.Records {
		training = append(training, core.TrainingSession{TLS: r.Capture.TLS, QoE: r.QoE})
	}
	est := core.NewEstimator(core.Config{Metric: qoe.MetricCombined, Forest: forest.Config{NumTrees: 8, Seed: 5}})
	if err := est.Train(training); err != nil {
		t.Fatal(err)
	}
	traffic, err := dataset.Build(dataset.Config{Seed: 13, Sessions: 18}, has.Svc1())
	if err != nil {
		t.Fatal(err)
	}
	return est, traffic
}

func TestShardInvariance(t *testing.T) {
	est, traffic := invarianceFixtures(t)

	matrix := []struct{ shards, workers int }{
		{1, 1}, {8, 1}, {8, 4}, {1, 4},
	}
	for _, mode := range []struct {
		name   string
		window time.Duration
	}{
		{"incremental", 0},
		{"windowed", time.Hour},
	} {
		t.Run(mode.name, func(t *testing.T) {
			base := replayTrace(t, est, traffic, mode.window, matrix[0].shards, matrix[0].workers, 0, nil)
			if len(base.classifications) == 0 {
				t.Fatal("baseline replay produced no classifications")
			}
			if base.counters["evicted"] == 0 {
				t.Fatal("baseline replay evicted no clients")
			}
			if len(base.sinkCSV) == 0 {
				t.Fatal("baseline replay wrote no sink output")
			}
			for _, m := range matrix[1:] {
				got := replayTrace(t, est, traffic, mode.window, m.shards, m.workers, 0, nil)
				compareRuns(t, fmt.Sprintf("shards=%d workers=%d", m.shards, m.workers), got, base)
			}
		})
	}
}

// compareRuns requires two replays to agree on every invariant
// observable: emission sequences, counters, sink bytes.
func compareRuns(t *testing.T, name string, got, base invariantRun) {
	t.Helper()
	if fmt.Sprint(got.classifications) != fmt.Sprint(base.classifications) {
		t.Errorf("%s: classification sequence diverged\n got %v\nwant %v",
			name, got.classifications, base.classifications)
	}
	if fmt.Sprint(got.evictions) != fmt.Sprint(base.evictions) {
		t.Errorf("%s: eviction sequence diverged\n got %v\nwant %v",
			name, got.evictions, base.evictions)
	}
	for k, want := range base.counters {
		if got.counters[k] != want {
			t.Errorf("%s: counter %s = %d, want %d", name, k, got.counters[k], want)
		}
	}
	if got.sinkCSV != base.sinkCSV {
		t.Errorf("%s: sink output diverged (%d bytes vs %d)", name, len(got.sinkCSV), len(base.sinkCSV))
	}
}

// TestBatchInvariance is the acceptance test for the batched per-shard
// inference sweep: the same trace replayed with batching disabled
// (classifyBatch 0, the row-at-a-time scorer) is the baseline, and
// every (shards, workers, batch) configuration — batch sizes that
// split a shard's rows mid-block included — must reproduce its
// classification sequence, eviction summaries, metric totals and sink
// bytes exactly. scripts/check.sh runs it under -race, which also
// exercises the gather-under-lock/sweep-outside-lock handoff.
func TestBatchInvariance(t *testing.T) {
	est, traffic := invarianceFixtures(t)

	matrix := []struct{ shards, workers, batch int }{
		{1, 1, 1}, {8, 1, 1}, {8, 4, 1}, {8, 4, 64}, {1, 4, 7}, {4, 2, 256},
	}
	for _, mode := range []struct {
		name   string
		window time.Duration
	}{
		{"incremental", 0},
		{"windowed", time.Hour},
	} {
		t.Run(mode.name, func(t *testing.T) {
			base := replayTrace(t, est, traffic, mode.window, 1, 1, 0, nil)
			if len(base.classifications) == 0 {
				t.Fatal("row-at-a-time baseline produced no classifications")
			}
			for _, m := range matrix {
				got := replayTrace(t, est, traffic, mode.window, m.shards, m.workers, m.batch, nil)
				compareRuns(t, fmt.Sprintf("shards=%d workers=%d batch=%d", m.shards, m.workers, m.batch), got, base)
			}
		})
	}
}

// TestShadowInvariance pins the champion/challenger guarantee: a
// -shadow-model sweeping the same gathered rows must not change a byte
// of the primary's output — classification sequences, eviction
// summaries, metric totals and sink bytes all match a shadowless run
// exactly, in both row-building modes and with batching on and off.
// The challenger is trained on deliberately scrambled labels (each
// session's TLS paired with another session's QoE) so the two models
// actually disagree (asserted via the disagreement counter): the
// invariance holds because shadow results go nowhere but counters,
// not because the models happen to agree.
func TestShadowInvariance(t *testing.T) {
	est, traffic := invarianceFixtures(t)
	trainCorpus, err := dataset.Build(dataset.Config{Seed: 5, Sessions: 60}, has.Svc1())
	if err != nil {
		t.Fatal(err)
	}
	var training []core.TrainingSession
	for _, r := range trainCorpus.Records {
		training = append(training, core.TrainingSession{TLS: r.Capture.TLS, QoE: r.QoE})
	}
	scrambled := make([]core.TrainingSession, len(training))
	for i, ts := range training {
		scrambled[i] = core.TrainingSession{TLS: ts.TLS, QoE: training[len(training)-1-i].QoE}
	}
	challenger := core.NewEstimator(core.Config{Metric: qoe.MetricCombined, Forest: forest.Config{NumTrees: 4, Seed: 99}})
	if err := challenger.Train(scrambled); err != nil {
		t.Fatal(err)
	}

	for _, mode := range []struct {
		name   string
		window time.Duration
	}{
		{"incremental", 0},
		{"windowed", time.Hour},
	} {
		t.Run(mode.name, func(t *testing.T) {
			for _, batch := range []int{0, 8} {
				base := replayTrace(t, est, traffic, mode.window, 4, 2, batch, nil)
				if len(base.classifications) == 0 {
					t.Fatal("shadowless baseline produced no classifications")
				}
				got := replayTrace(t, est, traffic, mode.window, 4, 2, batch, challenger)
				compareRuns(t, fmt.Sprintf("batch=%d shadowed-vs-plain", batch), got, base)
				if got.counters["shadow_disagreement"] == 0 {
					t.Errorf("batch=%d: challenger never disagreed; the invariance check is vacuous", batch)
				}
			}
		})
	}
}

// benchmarkIngest measures concurrent ingest throughput: GOMAXPROCS
// goroutines, each a distinct client, pushing completed transactions
// through the full onConnOpen/onTransaction path (sessionizer, ring,
// reorder buffer) with the given shard count. No estimator and no
// sinks: this isolates the state-mutation path the locks guard.
func benchmarkIngest(b *testing.B, shards int) {
	s := newService(options{
		window:          time.Hour,
		maxSessionTxns:  256,
		shards:          shards,
		classifyWorkers: 1,
	}, slog.New(slog.NewJSONHandler(io.Discard, nil)), nil)
	defer s.stopSinkWriter()
	s.registerMetrics() // the proxy-stats bridges are never scraped here

	var connID atomic.Uint64
	var clientSeq atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		c := clientSeq.Add(1)
		client := fmt.Sprintf("10.50.%d.%d:40000", c/200, c%200+1)
		// One transaction per second: the streamer's 3s look-ahead then
		// holds a handful of pending entries, as in real traffic, so the
		// per-op cost is flat rather than dominated by look-ahead churn.
		i := 0
		for pb.Next() {
			id := connID.Add(1)
			start := s.epoch.Add(time.Duration(i) * time.Second)
			s.onConnOpen(tlsproxy.Record{ConnID: id, SNI: "cdn-01.svc1.example", ClientAddr: client, Start: start})
			s.onTransaction(tlsproxy.Record{
				ConnID:     id,
				SNI:        "cdn-01.svc1.example",
				ClientAddr: client,
				Start:      start,
				End:        start.Add(5 * time.Millisecond),
				UpBytes:    412,
				DownBytes:  180_000,
			})
			i++
		}
	})
	b.StopTimer()
	// Contended acquisitions per op: with one shard every overlapping
	// ingest queues on the same mutex; with a shard per core they only
	// collide when clients hash together.
	b.ReportMetric(float64(s.mContention.Value())/float64(b.N), "contended/op")
}

// BenchmarkConcurrentIngest compares the single-mutex baseline
// (shards=1) against one shard per core; BENCH_serving.json records
// the GOMAXPROCS=8 results.
func BenchmarkConcurrentIngest(b *testing.B) {
	b.Run("shards=1", func(b *testing.B) { benchmarkIngest(b, 1) })
	b.Run(fmt.Sprintf("shards=%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		benchmarkIngest(b, runtime.GOMAXPROCS(0))
	})
}
