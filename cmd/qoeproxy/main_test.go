package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"droppackets/internal/core"
	"droppackets/internal/dataset"
	"droppackets/internal/has"
	"droppackets/internal/ml/forest"
	"droppackets/internal/qoe"
	"droppackets/internal/squidlog"
	"droppackets/internal/tlsproxy"
)

func TestLoadResolverMapAndFallback(t *testing.T) {
	path := filepath.Join(t.TempDir(), "map.txt")
	content := "# comment\ncdn-01.svc1.example 10.0.0.1:9443\napi.svc1.example 10.0.0.2:9443\n\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := loadResolver(path, "fallback:443")
	if err != nil {
		t.Fatal(err)
	}
	if addr, _ := r("cdn-01.svc1.example"); addr != "10.0.0.1:9443" {
		t.Errorf("mapped SNI -> %s", addr)
	}
	if addr, _ := r("other.example"); addr != "fallback:443" {
		t.Errorf("unmapped SNI -> %s", addr)
	}
}

func TestLoadResolverNoFallback(t *testing.T) {
	path := filepath.Join(t.TempDir(), "map.txt")
	os.WriteFile(path, []byte("a.example 1.2.3.4:443\n"), 0o644)
	r, err := loadResolver(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r("unmapped.example"); err == nil {
		t.Error("unmapped SNI without fallback should error")
	}
}

func TestLoadResolverErrors(t *testing.T) {
	if _, err := loadResolver("", ""); err == nil {
		t.Error("no map and no fallback accepted")
	}
	if _, err := loadResolver("/nonexistent/map", "x:1"); err == nil {
		t.Error("missing map file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.txt")
	os.WriteFile(bad, []byte("one-field-only\n"), 0o644)
	if _, err := loadResolver(bad, "x:1"); err == nil {
		t.Error("malformed map line accepted")
	}
}

func TestClientHost(t *testing.T) {
	tests := []struct {
		addr, want string
	}{
		{"10.0.0.5:51234", "10.0.0.5"},
		{"1.2.3.4:5", "1.2.3.4"},
		{"noport", "noport"},
		{"[::1]:443", "::1"},
		{"::1", "::1"}, // bare IPv6: a LastIndex(":") cut would yield "::"
		{"[2001:db8::42]:8443", "2001:db8::42"},
		{"2001:db8::42", "2001:db8::42"},
		{"", ""},
	}
	for _, tc := range tests {
		if got := clientHost(tc.addr); got != tc.want {
			t.Errorf("clientHost(%q) = %q, want %q", tc.addr, got, tc.want)
		}
	}
}

// freePort reserves a port briefly and returns it for reuse.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func TestOpenAppendHeaderOnce(t *testing.T) {
	path := filepath.Join(t.TempDir(), "txns.csv")
	f, empty, err := openAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if !empty {
		t.Error("fresh file reported non-empty")
	}
	f.WriteString("header\n")
	f.Close()
	f, empty, err = openAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if empty {
		t.Error("existing file reported empty: header would duplicate")
	}
}

// TestRunValidatesOutputsBeforeBinding feeds run an uncreatable -out
// path and expects an error naming the flag, with the listen address
// never bound (so no client could have connected to a doomed daemon).
func TestRunValidatesOutputsBeforeBinding(t *testing.T) {
	listen := freePort(t)
	err := run(options{
		listen:   listen,
		upstream: "127.0.0.1:1",
		outPath:  filepath.Join(t.TempDir(), "missing-dir", "txns.csv"),
	})
	if err == nil {
		t.Fatal("run accepted an uncreatable -out path")
	}
	if !strings.Contains(err.Error(), "-out") {
		t.Errorf("error does not name the flag: %v", err)
	}
	// The listener must never have come up.
	if conn, err := net.DialTimeout("tcp", listen, 200*time.Millisecond); err == nil {
		conn.Close()
		t.Error("listen address was bound despite invalid output path")
	}

	err = run(options{
		listen:    listen,
		upstream:  "127.0.0.1:1",
		modelPath: filepath.Join(t.TempDir(), "no-such-model.json"),
	})
	if err == nil {
		t.Fatal("run accepted a missing model")
	}
}

// scrape fetches a URL body, failing the test on any error.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(body)
}

// metricValue extracts the value of an unlabeled series from a scrape.
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %s not in scrape:\n%s", series, body)
	return 0
}

// TestClassifyPassPaths drives classifyPass directly through both the
// incremental (window 0, accumulator-backed) and the sliding-window
// row builders on the same synthetic client state — transactions split
// across decided, in-flight and buffered runs — and requires each to
// agree with a plain batch classification of the whole session.
func TestClassifyPassPaths(t *testing.T) {
	corpus, err := dataset.Build(dataset.Config{Seed: 5, Sessions: 60}, has.Svc1())
	if err != nil {
		t.Fatal(err)
	}
	var training []core.TrainingSession
	for _, r := range corpus.Records {
		training = append(training, core.TrainingSession{TLS: r.Capture.TLS, QoE: r.QoE})
	}
	est := core.NewEstimator(core.Config{Metric: qoe.MetricCombined, Forest: forest.Config{NumTrees: 8, Seed: 5}})
	if err := est.Train(training); err != nil {
		t.Fatal(err)
	}

	for _, mode := range []struct {
		name   string
		window time.Duration
	}{
		{"incremental", 0},
		{"windowed", time.Hour},
	} {
		t.Run(mode.name, func(t *testing.T) {
			s, _ := newTestService(t, options{window: mode.window}, est)
			txns := corpus.Records[1].Capture.TLS
			if len(txns) < 3 {
				t.Skip("record too small to split")
			}
			cut1, cut2 := len(txns)/3, 2*len(txns)/3
			sh := s.shardFor("10.9.9.9")
			sh.mu.Lock()
			cs := s.state(sh, "10.9.9.9")
			for _, tx := range txns[:cut1] {
				cs.current = append(cs.current, tx)
				if cs.tracked != nil {
					cs.tracked.Observe(tx)
				}
			}
			cs.inFlight = append(cs.inFlight, txns[cut1:cut2]...)
			cs.buffer = append(cs.buffer, txns[cut2:]...)
			sh.mu.Unlock()

			want, err := est.Classify(txns)
			if err != nil {
				t.Fatal(err)
			}
			for pass := 0; pass < 2; pass++ { // second pass reuses warm buffers
				s.classifyPass(1)
				sh.mu.Lock()
				got, has := cs.lastClass, cs.hasClass
				sh.mu.Unlock()
				if !has {
					t.Fatalf("pass %d: no classification recorded", pass)
				}
				if got != want {
					t.Fatalf("pass %d: class = %d, batch Classify = %d", pass, got, want)
				}
			}
			if cs.tracked != nil && cs.tracked.Len() != cut1 {
				t.Fatalf("speculative pass leaked state: tracked.Len = %d, want %d", cs.tracked.Len(), cut1)
			}
		})
	}
}

// TestRunReplay boots the daemon with a -replay workload instead of
// live traffic and checks the records flow through the real ingest
// path: transaction and classification metrics move, and shutdown
// still drains cleanly.
func TestRunReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon integration is slow")
	}
	corpus, err := dataset.Build(dataset.Config{Seed: 3, Sessions: 60}, has.Svc1())
	if err != nil {
		t.Fatal(err)
	}
	var training []core.TrainingSession
	for _, r := range corpus.Records {
		training = append(training, core.TrainingSession{TLS: r.Capture.TLS, QoE: r.QoE})
	}
	est := core.NewEstimator(core.Config{Metric: qoe.MetricCombined, Forest: forest.Config{NumTrees: 8, Seed: 3}})
	if err := est.Train(training); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.json")
	mf, err := os.Create(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := est.Save(mf); err != nil {
		t.Fatal(err)
	}
	mf.Close()

	// Workload: 40 clients, one session each, drawn from the corpus.
	var recs []tlsproxy.ReplayRecord
	for i := 0; i < 40; i++ {
		r := corpus.Records[i%len(corpus.Records)]
		client := fmt.Sprintf("10.42.0.%d:40000", i+1)
		for _, txn := range r.Capture.TLS {
			recs = append(recs, tlsproxy.ReplayRecord{
				Client: client, SNI: txn.SNI,
				Start: txn.Start, End: txn.End,
				UpBytes: txn.UpBytes, DownBytes: txn.DownBytes,
			})
		}
	}
	workloadPath := filepath.Join(dir, "workload.csv")
	wf, err := os.Create(workloadPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := tlsproxy.WriteWorkload(wf, recs); err != nil {
		t.Fatal(err)
	}
	wf.Close()

	listen := freePort(t)
	metricsAddr := freePort(t)
	done := make(chan error, 1)
	go func() {
		done <- run(options{
			listen:        listen,
			upstream:      "127.0.0.1:1",
			modelPath:     modelPath,
			metricsAddr:   metricsAddr,
			classifyEvery: 100 * time.Millisecond,
			classifyBatch: 8,
			replayPath:    workloadPath,
			replayWorkers: 2,
		})
	}()

	// Replay runs at full speed; wait for every record to land and a
	// classification pass to run.
	base := "http://" + metricsAddr
	deadline := time.Now().Add(15 * time.Second)
	var txns, runs float64
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/metrics")
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			txns = metricValue(t, string(body), "qoeproxy_transactions_total")
			runs = metricValue(t, string(body), "qoeproxy_classification_runs_total")
			if txns == float64(len(recs)) && runs >= 1 {
				break
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	if txns != float64(len(recs)) {
		t.Errorf("qoeproxy_transactions_total = %g, want %d", txns, len(recs))
	}
	if runs < 1 {
		t.Errorf("qoeproxy_classification_runs_total = %g, want >= 1", runs)
	}
	body := scrape(t, base+"/metrics")
	if got := metricValue(t, body, "qoeproxy_classification_errors_total"); got != 0 {
		t.Errorf("qoeproxy_classification_errors_total = %g", got)
	}
	for _, series := range []string{
		"qoeproxy_gc_pause_seconds_total",
		"qoeproxy_gc_runs_total",
		"qoeproxy_heap_alloc_bytes_total",
		"qoeproxy_heap_inuse_bytes",
		"qoeproxy_goroutines",
	} {
		metricValue(t, body, series)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestRunEndToEnd drives the daemon: origin <- proxy <- client, CSV and
// Squid outputs, live /metrics+/healthz with online classification
// while relaying, then shutdown via SIGINT with model classification.
func TestRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon integration is slow")
	}
	// Train and save a tiny model for the shutdown classification.
	corpus, err := dataset.Build(dataset.Config{Seed: 2, Sessions: 60}, has.Svc1())
	if err != nil {
		t.Fatal(err)
	}
	var training []core.TrainingSession
	for _, r := range corpus.Records {
		training = append(training, core.TrainingSession{TLS: r.Capture.TLS, QoE: r.QoE})
	}
	est := core.NewEstimator(core.Config{Metric: qoe.MetricCombined, Forest: forest.Config{NumTrees: 8, Seed: 2}})
	if err := est.Train(training); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.json")
	mf, err := os.Create(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := est.Save(mf); err != nil {
		t.Fatal(err)
	}
	mf.Close()

	// Origin behind the proxy.
	origin := tlsproxy.NewOrigin(0)
	ol, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go origin.Serve(ol)
	defer origin.Close()

	listen := freePort(t)
	metricsAddr := freePort(t)
	csvPath := filepath.Join(dir, "txns.csv")
	squidPath := filepath.Join(dir, "access.log")
	done := make(chan error, 1)
	go func() {
		done <- run(options{
			listen:        listen,
			upstream:      ol.Addr().String(),
			outPath:       csvPath,
			squidPath:     squidPath,
			modelPath:     modelPath,
			metricsAddr:   metricsAddr,
			classifyEvery: 150 * time.Millisecond,
			window:        0, // whole current session
		})
	}()

	// Wait for the listener, then stream two connections through it.
	var client *tlsproxy.Client
	deadline := time.Now().Add(5 * time.Second)
	for {
		client, err = tlsproxy.Dial(listen, "cdn-01.svc1.example")
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("dial daemon: %v", err)
	}
	if _, err := client.Fetch(120_000); err != nil {
		t.Fatal(err)
	}
	client.Close()
	second, err := tlsproxy.Dial(listen, "api.svc1.example")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := second.Fetch(20_000); err != nil {
		t.Fatal(err)
	}
	second.Close()

	// The service must classify DURING operation: wait for a prediction
	// counter to move while the daemon is still relaying.
	base := "http://" + metricsAddr
	deadline = time.Now().Add(10 * time.Second)
	classified := false
	for !classified && time.Now().Before(deadline) {
		body := scrape(t, base+"/metrics")
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, "qoeproxy_qoe_predictions_total{") && !strings.HasSuffix(line, " 0") {
				classified = true
			}
		}
		if !classified {
			time.Sleep(100 * time.Millisecond)
		}
	}
	if !classified {
		t.Error("no online classification happened while the daemon was serving")
	}

	// Core series must exist and reflect the relayed traffic.
	body := scrape(t, base+"/metrics")
	if got := metricValue(t, body, "qoeproxy_transactions_total"); got != 2 {
		t.Errorf("qoeproxy_transactions_total = %g, want 2", got)
	}
	if got := metricValue(t, body, "qoeproxy_relayed_down_bytes_total"); got < 140_000 {
		t.Errorf("qoeproxy_relayed_down_bytes_total = %g, want >= 140000", got)
	}
	if got := metricValue(t, body, "qoeproxy_connections_total"); got != 2 {
		t.Errorf("qoeproxy_connections_total = %g, want 2", got)
	}
	if got := metricValue(t, body, "qoeproxy_clients"); got != 1 {
		t.Errorf("qoeproxy_clients = %g, want 1", got)
	}
	if got := metricValue(t, body, "qoeproxy_inference_seconds_count"); got < 1 {
		t.Errorf("qoeproxy_inference_seconds_count = %g, want >= 1", got)
	}
	if got := metricValue(t, body, "qoeproxy_feature_extraction_seconds_count"); got < 1 {
		t.Errorf("qoeproxy_feature_extraction_seconds_count = %g, want >= 1", got)
	}
	for _, series := range []string{
		"qoeproxy_hello_parse_failures_total",
		"qoeproxy_resolve_failures_total",
		"qoeproxy_dial_failures_total",
		"qoeproxy_session_boundaries_total",
		"qoeproxy_feature_transactions_ingested_total",
		"qoeproxy_active_sessions",
	} {
		metricValue(t, body, series)
	}

	var health struct {
		Status           string  `json:"status"`
		UptimeSeconds    float64 `json:"uptime_seconds"`
		TotalConnections int64   `json:"total_connections"`
	}
	if err := json.Unmarshal([]byte(scrape(t, base+"/healthz")), &health); err != nil {
		t.Fatalf("healthz is not JSON: %v", err)
	}
	if health.Status != "ok" || health.UptimeSeconds <= 0 || health.TotalConnections != 2 {
		t.Errorf("healthz = %+v", health)
	}

	// Stop the daemon.
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}

	csvData, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(csvData), "cdn-01.svc1.example") {
		t.Errorf("CSV missing transaction:\n%s", csvData)
	}
	squidData, err := os.ReadFile(squidPath)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := squidlog.Parse(strings.NewReader(string(squidData)))
	if err != nil {
		t.Fatalf("squid log does not parse: %v", err)
	}
	if len(entries) != 2 {
		t.Errorf("%d squid entries, want 2", len(entries))
	}
}
