package main

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"droppackets/internal/core"
	"droppackets/internal/dataset"
	"droppackets/internal/has"
	"droppackets/internal/ml/forest"
	"droppackets/internal/qoe"
	"droppackets/internal/squidlog"
	"droppackets/internal/tlsproxy"
)

func TestLoadResolverMapAndFallback(t *testing.T) {
	path := filepath.Join(t.TempDir(), "map.txt")
	content := "# comment\ncdn-01.svc1.example 10.0.0.1:9443\napi.svc1.example 10.0.0.2:9443\n\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := loadResolver(path, "fallback:443")
	if err != nil {
		t.Fatal(err)
	}
	if addr, _ := r("cdn-01.svc1.example"); addr != "10.0.0.1:9443" {
		t.Errorf("mapped SNI -> %s", addr)
	}
	if addr, _ := r("other.example"); addr != "fallback:443" {
		t.Errorf("unmapped SNI -> %s", addr)
	}
}

func TestLoadResolverNoFallback(t *testing.T) {
	path := filepath.Join(t.TempDir(), "map.txt")
	os.WriteFile(path, []byte("a.example 1.2.3.4:443\n"), 0o644)
	r, err := loadResolver(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r("unmapped.example"); err == nil {
		t.Error("unmapped SNI without fallback should error")
	}
}

func TestLoadResolverErrors(t *testing.T) {
	if _, err := loadResolver("", ""); err == nil {
		t.Error("no map and no fallback accepted")
	}
	if _, err := loadResolver("/nonexistent/map", "x:1"); err == nil {
		t.Error("missing map file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.txt")
	os.WriteFile(bad, []byte("one-field-only\n"), 0o644)
	if _, err := loadResolver(bad, "x:1"); err == nil {
		t.Error("malformed map line accepted")
	}
}

func TestClientHost(t *testing.T) {
	if clientHost("10.0.0.5:51234") != "10.0.0.5" {
		t.Error("port not stripped")
	}
	if clientHost("noport") != "noport" {
		t.Error("portless address mangled")
	}
}

// freePort reserves a port briefly and returns it for reuse.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestRunEndToEnd drives the daemon: origin <- proxy <- client, CSV and
// Squid outputs, then shutdown via SIGINT with model classification.
func TestRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon integration is slow")
	}
	// Train and save a tiny model for the shutdown classification.
	corpus, err := dataset.Build(dataset.Config{Seed: 2, Sessions: 60}, has.Svc1())
	if err != nil {
		t.Fatal(err)
	}
	var training []core.TrainingSession
	for _, r := range corpus.Records {
		training = append(training, core.TrainingSession{TLS: r.Capture.TLS, QoE: r.QoE})
	}
	est := core.NewEstimator(core.Config{Metric: qoe.MetricCombined, Forest: forest.Config{NumTrees: 8, Seed: 2}})
	if err := est.Train(training); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.json")
	mf, err := os.Create(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := est.Save(mf); err != nil {
		t.Fatal(err)
	}
	mf.Close()

	// Origin behind the proxy.
	origin := tlsproxy.NewOrigin(0)
	ol, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go origin.Serve(ol)
	defer origin.Close()

	listen := freePort(t)
	csvPath := filepath.Join(dir, "txns.csv")
	squidPath := filepath.Join(dir, "access.log")
	done := make(chan error, 1)
	go func() {
		done <- run(listen, ol.Addr().String(), "", csvPath, squidPath, modelPath)
	}()

	// Wait for the listener, then stream two connections through it.
	var client *tlsproxy.Client
	deadline := time.Now().Add(5 * time.Second)
	for {
		client, err = tlsproxy.Dial(listen, "cdn-01.svc1.example")
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("dial daemon: %v", err)
	}
	if _, err := client.Fetch(120_000); err != nil {
		t.Fatal(err)
	}
	client.Close()
	second, err := tlsproxy.Dial(listen, "api.svc1.example")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := second.Fetch(20_000); err != nil {
		t.Fatal(err)
	}
	second.Close()

	// Give the relay a moment to flush records, then stop the daemon.
	time.Sleep(300 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}

	csvData, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(csvData), "cdn-01.svc1.example") {
		t.Errorf("CSV missing transaction:\n%s", csvData)
	}
	squidData, err := os.ReadFile(squidPath)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := squidlog.Parse(strings.NewReader(string(squidData)))
	if err != nil {
		t.Fatalf("squid log does not parse: %v", err)
	}
	if len(entries) != 2 {
		t.Errorf("%d squid entries, want 2", len(entries))
	}
}
