package main

// Serving-state snapshot/restore: the warm-restart and partition-
// handoff half of fleet operation. A snapshot serializes every
// client's live serving state — sessionizer, reorder buffer, in-flight
// and current-session runs, recent-transaction ring, lifetime
// aggregates, last online classification — into one versioned JSON
// envelope (the convention of internal/core/persist.go: explicit
// version field, unknown versions rejected). A daemon started with
// -restore rebuilds that state before ingesting a single record, so
// its subsequent classifications, counters and sink lines are
// byte-identical to a daemon that never stopped; the equivalence tests
// in snapshot_test.go pin this.
//
// The feature accumulator is deliberately NOT serialized: its state is
// a pure function of the current-session transactions ingested in
// order (apply already relies on this when it rebuilds after
// truncation), so restore replays cs.current through a fresh
// accumulator and gets the bit-identical vector back — the envelope
// stays small and version-stable while the accumulator's internals
// remain free to change.
//
// The envelope carries the epoch of the instance that wrote it, and
// restore adopts it: every float in the state is epoch-relative
// seconds, so the successor must keep measuring offsets against the
// original zero for watermarks, TTLs and sink timestamps to stay
// consistent (the uptime gauge consequently reports time since the
// ORIGINAL instance started — documented in docs/OPERATIONS.md).

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"droppackets/internal/capture"
	"droppackets/internal/core"
	"droppackets/internal/sessionid"
	"droppackets/internal/stats"
)

// snapshotVersion is the envelope layout version this build writes and
// the newest it accepts.
const snapshotVersion = 1

// savedSnapshot is the on-disk serving-state envelope.
type savedSnapshot struct {
	Version int `json:"version"`
	// Instance records which fleet member wrote the snapshot (empty for
	// a standalone daemon) — operators use it to audit handoffs; restore
	// does not require it to match.
	Instance string `json:"instance,omitempty"`
	// EpochUnixNanos is the writer's epoch; every time float below is
	// seconds since it.
	EpochUnixNanos int64 `json:"epoch_unix_nanos"`
	// Watermark is the ingest watermark at capture, epoch seconds.
	Watermark float64      `json:"watermark"`
	Clients   []snapClient `json:"clients"`
}

// snapClient is one client's complete serving state. Transaction runs
// use capture.TLSTransaction directly — a stable public type — in the
// same start-ordered concatenation invariant the live state keeps
// (current ++ in_flight ++ buffer is the ongoing session in order).
type snapClient struct {
	Client       string                   `json:"client"`
	Streamer     sessionid.StreamerState  `json:"streamer"`
	ActiveStarts map[uint64]float64       `json:"active_starts,omitempty"`
	Buffer       []capture.TLSTransaction `json:"buffer,omitempty"`
	InFlight     []capture.TLSTransaction `json:"in_flight,omitempty"`
	Current      []capture.TLSTransaction `json:"current,omitempty"`
	// Recent is the retained summary ring, oldest first; RecentDropped
	// restores its lifetime drop count.
	Recent        []capture.TLSTransaction `json:"recent,omitempty"`
	RecentDropped int64                    `json:"recent_dropped,omitempty"`
	LastActivity  float64                  `json:"last_activity"`
	Txns          int64                    `json:"txns"`
	UpBytes       int64                    `json:"up_bytes"`
	DownBytes     int64                    `json:"down_bytes"`
	Dur           stats.RunningState       `json:"dur"`
	Boundaries    int64                    `json:"boundaries"`
	Truncated     bool                     `json:"truncated,omitempty"`
	LastClass     int                      `json:"last_class,omitempty"`
	HasClass      bool                     `json:"has_class,omitempty"`
}

// snapshotState captures the full serving state. Each shard is
// captured under its own lock, so every client's state is internally
// consistent; for a fully consistent fleet handoff the caller stops
// ingest first (the SIGTERM path does). Clients are sorted so the same
// state always serializes to the same bytes.
func (s *service) snapshotState() *savedSnapshot {
	snap := &savedSnapshot{
		Version:        snapshotVersion,
		Instance:       s.instanceID,
		EpochUnixNanos: s.epoch.UnixNano(),
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		for client, cs := range sh.clients {
			sc := snapClient{
				Client:        client,
				Streamer:      cs.streamer.State(),
				Buffer:        append([]capture.TLSTransaction(nil), cs.buffer...),
				InFlight:      append([]capture.TLSTransaction(nil), cs.inFlight...),
				Current:       append([]capture.TLSTransaction(nil), cs.current...),
				Recent:        cs.recent.snapshot(nil),
				RecentDropped: cs.recent.dropped,
				LastActivity:  cs.lastActivity,
				Txns:          cs.txns,
				UpBytes:       cs.upBytes,
				DownBytes:     cs.downBytes,
				Dur:           cs.durStats.State(),
				Boundaries:    cs.boundaries,
				Truncated:     cs.truncated,
				LastClass:     cs.lastClass,
				HasClass:      cs.hasClass,
			}
			if len(cs.activeStarts) > 0 {
				sc.ActiveStarts = make(map[uint64]float64, len(cs.activeStarts))
				for id, start := range cs.activeStarts {
					sc.ActiveStarts[id] = start
				}
			}
			snap.Clients = append(snap.Clients, sc)
		}
		sh.mu.Unlock()
	}
	sort.Slice(snap.Clients, func(i, j int) bool { return snap.Clients[i].Client < snap.Clients[j].Client })
	snap.Watermark = math.Float64frombits(s.watermark.Load())
	return snap
}

// writeSnapshotFile serializes the serving state atomically: a temp
// file in the destination directory, fsynced, then renamed over the
// target — a crash mid-write never leaves a truncated envelope where
// a successor would look for a good one.
func (s *service) writeSnapshotFile(path string) (clients int, err error) {
	snap := s.snapshotState()
	raw, err := json.Marshal(snap)
	if err != nil {
		return 0, fmt.Errorf("snapshot: encoding: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".qoeproxy-snapshot-*")
	if err != nil {
		return 0, fmt.Errorf("snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("snapshot: writing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("snapshot: syncing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, fmt.Errorf("snapshot: %w", err)
	}
	return len(snap.Clients), nil
}

// loadSnapshotFile reads and validates a snapshot envelope.
func loadSnapshotFile(path string) (*savedSnapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	var snap savedSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, fmt.Errorf("snapshot: decoding %s: %w", path, err)
	}
	if snap.Version < 1 || snap.Version > snapshotVersion {
		return nil, fmt.Errorf("snapshot: %s has version %d, want 1..%d", path, snap.Version, snapshotVersion)
	}
	if snap.EpochUnixNanos == 0 {
		return nil, fmt.Errorf("snapshot: %s carries no epoch", path)
	}
	for i, c := range snap.Clients {
		if c.Client == "" {
			return nil, fmt.Errorf("snapshot: %s client %d has an empty address", path, i)
		}
	}
	return &snap, nil
}

// restoreState rebuilds the serving state from a snapshot: the epoch
// and watermark are adopted wholesale, and every owned client's state
// is reconstructed exactly — the feature accumulator by replaying the
// current session (bit-identical, see the package comment). Clients
// the cluster ring no longer assigns to this instance are dropped, not
// resurrected: their partitions moved to a peer, and keeping their
// state (or re-interning their strings) here would double-classify
// them. Global counters are untouched — restore is not ingest; a
// fleet's counter totals stay the sum of what each instance actually
// processed. Must run before any source is constructed or record
// delivered.
func (s *service) restoreState(snap *savedSnapshot) (restored, skippedNotOwned int) {
	s.epoch = time.Unix(0, snap.EpochUnixNanos)
	s.watermark.Store(math.Float64bits(snap.Watermark))
	for i := range snap.Clients {
		sc := &snap.Clients[i]
		if !s.owns(sc.Client) {
			skippedNotOwned++
			continue
		}
		cs := &clientState{
			streamer:     sessionid.RestoreStreamer(sessionid.PaperParams, sc.Streamer),
			activeStarts: map[uint64]float64{},
			buffer:       append([]capture.TLSTransaction(nil), sc.Buffer...),
			inFlight:     append([]capture.TLSTransaction(nil), sc.InFlight...),
			current:      append([]capture.TLSTransaction(nil), sc.Current...),
			recent:       newTxnRing(s.opts.maxSessionTxns),
			lastActivity: sc.LastActivity,
			txns:         sc.Txns,
			upBytes:      sc.UpBytes,
			downBytes:    sc.DownBytes,
			boundaries:   sc.Boundaries,
			truncated:    sc.Truncated,
			lastClass:    sc.LastClass,
			hasClass:     sc.HasClass,
		}
		for id, start := range sc.ActiveStarts {
			cs.activeStarts[id] = start
		}
		for _, t := range sc.Recent {
			cs.recent.push(t)
		}
		cs.recent.dropped = sc.RecentDropped
		cs.durStats.Restore(sc.Dur)
		if s.track {
			cs.tracked = core.NewTrackedSession()
			cs.tracked.ObserveAll(cs.current)
		}
		sh := s.shardFor(sc.Client)
		sh.mu.Lock()
		sh.clients[sc.Client] = cs
		sh.mu.Unlock()
		restored++
	}
	return restored, skippedNotOwned
}

// restoreFromFile is the -restore startup path: a missing, corrupt or
// truncated snapshot is logged and the daemon starts cold — never
// crashes — because a fleet member must come up and take its
// partitions even when the previous incarnation left nothing usable
// behind.
func (s *service) restoreFromFile(path string) {
	snap, err := loadSnapshotFile(path)
	if err != nil {
		s.log.Error("snapshot restore failed; starting cold", "path", path, "err", err)
		return
	}
	restored, skipped := s.restoreState(snap)
	s.log.Info("snapshot restored",
		"path", path, "from_instance", snap.Instance,
		"clients", restored, "skipped_not_owned", skipped,
		"watermark", snap.Watermark)
}
