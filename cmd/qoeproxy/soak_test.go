package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"droppackets/internal/capture"
	"droppackets/internal/core"
	"droppackets/internal/dataset"
	"droppackets/internal/has"
	"droppackets/internal/ml/forest"
	"droppackets/internal/qoe"
	"droppackets/internal/tlsproxy"
)

// TestEvictionSoakBounded is the acceptance soak for the memory
// bounds: many sessions across many clients, with eviction and the
// transaction cap enabled, must keep per-client state and the clients
// map bounded — asserted via the qoeproxy_clients gauge and direct
// state inspection — while the classification each eviction emits
// stays identical to the unbounded baseline for sessions under the
// cap (and, over it, to a batch classification of exactly the
// retained most-recent transactions).
func TestEvictionSoakBounded(t *testing.T) {
	const (
		maxTxns    = 8
		numClients = 8
		numRounds  = 3
		ttl        = 300 * time.Second
	)

	// A trained model so evictions emit real classifications.
	trainCorpus, err := dataset.Build(dataset.Config{Seed: 5, Sessions: 60}, has.Svc1())
	if err != nil {
		t.Fatal(err)
	}
	var training []core.TrainingSession
	for _, r := range trainCorpus.Records {
		training = append(training, core.TrainingSession{TLS: r.Capture.TLS, QoE: r.QoE})
	}
	est := core.NewEstimator(core.Config{Metric: qoe.MetricCombined, Forest: forest.Config{NumTrees: 8, Seed: 5}})
	if err := est.Train(training); err != nil {
		t.Fatal(err)
	}
	names := core.ClassNames(est.Metric())

	// Traffic corpus: one session per (round, client); seed 9 yields
	// sessions from 4 to 33 transactions, half of them over the cap.
	traffic, err := dataset.Build(dataset.Config{Seed: 9, Sessions: numClients * numRounds}, has.Svc1())
	if err != nil {
		t.Fatal(err)
	}

	s, logs := newTestService(t, options{
		window:         0, // incremental mode: tracked accumulators in play
		clientTTL:      ttl,
		maxSessionTxns: maxTxns,
	}, est)

	gaugeValue := func(series string) float64 {
		t.Helper()
		var page bytes.Buffer
		s.reg.Render(&page)
		for _, line := range strings.Split(page.String(), "\n") {
			var v float64
			if n, _ := fmt.Sscanf(line, series+" %f", &v); n == 1 {
				return v
			}
		}
		t.Fatalf("series %s not rendered", series)
		return 0
	}

	var connID uint64
	base := 0.0
	expected := make([]map[string]string, numRounds) // round -> client -> class name
	for round := 0; round < numRounds; round++ {
		expected[round] = map[string]string{}
		roundEnd := 0.0
		for c := 0; c < numClients; c++ {
			client := fmt.Sprintf("10.9.0.%d", c+1)
			session := traffic.Records[round*numClients+c].Capture.TLS
			shifted := make([]capture.TLSTransaction, 0, len(session))
			sorted := append([]capture.TLSTransaction(nil), session...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
			for _, txn := range sorted {
				connID++
				start := s.epoch.Add(time.Duration((base + txn.Start) * float64(time.Second)))
				end := s.epoch.Add(time.Duration((base + txn.End) * float64(time.Second)))
				rec := tlsproxy.Record{
					ConnID:     connID,
					SNI:        txn.SNI,
					ClientAddr: client + ":40000",
					Start:      start,
					End:        end,
					UpBytes:    txn.UpBytes,
					DownBytes:  txn.DownBytes,
				}
				// The canonical transaction, roundtripped through the same
				// time conversion onTransaction applies, so the baseline
				// sees bit-identical values to the ring.
				shifted = append(shifted, capture.TLSTransaction{
					SNI:       txn.SNI,
					Start:     start.Sub(s.epoch).Seconds(),
					End:       end.Sub(s.epoch).Seconds(),
					UpBytes:   txn.UpBytes,
					DownBytes: txn.DownBytes,
				})
				s.onConnOpen(rec)
				s.onTransaction(rec)
				if e := base + txn.End; e > roundEnd {
					roundEnd = e
				}
			}

			// Direct state inspection: every per-client run is bounded.
			// capRun's 50% hysteresis allows limit+limit/2 before a
			// truncation pass cuts back to limit.
			cs := s.client(client)
			if got := cs.recent.len(); got > maxTxns {
				t.Errorf("round %d %s: ring holds %d txns, cap %d", round, client, got, maxTxns)
			}
			if got := len(cs.current); got > maxTxns+maxTxns/2 {
				t.Errorf("round %d %s: current session holds %d txns, bound %d", round, client, got, maxTxns+maxTxns/2)
			}
			if got := len(cs.buffer); got > maxTxns+maxTxns/2 {
				t.Errorf("round %d %s: reorder buffer holds %d txns, bound %d", round, client, got, maxTxns+maxTxns/2)
			}
			if cs.txns != int64(len(sorted)) {
				t.Errorf("round %d %s: lifetime txns = %d, want %d (truncation must not lose the totals)",
					round, client, cs.txns, len(sorted))
			}

			// The unbounded baseline: the classification an uncapped
			// daemon would emit. Under the cap the ring holds the whole
			// session, so the two must match exactly; over it, eviction
			// classifies the most recent maxTxns transactions.
			baseline := shifted
			if len(baseline) > maxTxns {
				baseline = baseline[len(baseline)-maxTxns:]
			}
			class, err := est.Classify(baseline)
			if err != nil {
				t.Fatalf("baseline classify: %v", err)
			}
			expected[round][client] = names[class]
		}

		if got := gaugeValue("qoeproxy_clients"); got != numClients {
			t.Fatalf("round %d: qoeproxy_clients = %v mid-round, want %d", round, got, numClients)
		}

		// The classify tick: a pass, then the eviction sweep past the TTL.
		evictAt := s.epoch.Add(time.Duration((roundEnd + ttl.Seconds() + 1) * float64(time.Second)))
		s.classifyPass(evictAt.Sub(s.epoch).Seconds())
		s.evictIdle(evictAt.Sub(s.epoch).Seconds())

		if left := s.clientCount(); left != 0 {
			t.Fatalf("round %d: %d clients survived the eviction sweep", round, left)
		}
		if got := gaugeValue("qoeproxy_clients"); got != 0 {
			t.Fatalf("round %d: qoeproxy_clients = %v after sweep, want 0", round, got)
		}
		if got := s.mEvicted.Value(); got != int64((round+1)*numClients) {
			t.Fatalf("round %d: clients_evicted_total = %d, want %d", round, got, (round+1)*numClients)
		}

		base = roundEnd + ttl.Seconds() + 10
	}

	if got := s.mTruncated.Value(); got == 0 {
		t.Error("sessions_truncated_total stayed 0 although half the sessions exceed the cap")
	}

	// Every eviction's logged classification must match its baseline.
	// evictIdle logs clients in sorted order per sweep, so the lines
	// arrive as numRounds consecutive sorted groups.
	type evictLine struct {
		Msg    string `json:"msg"`
		Client string `json:"client"`
		Class  string `json:"class"`
	}
	var got []evictLine
	for _, line := range logs.lines() {
		if line == "" {
			continue
		}
		var e evictLine
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("log line is not JSON: %q", line)
		}
		if e.Msg == "client evicted" {
			got = append(got, e)
		}
	}
	if len(got) != numRounds*numClients {
		t.Fatalf("logged %d evictions, want %d", len(got), numRounds*numClients)
	}
	for i, e := range got {
		round := i / numClients
		want := expected[round][e.Client]
		if want == "" {
			t.Errorf("eviction %d: unexpected client %q", i, e.Client)
			continue
		}
		if e.Class != want {
			t.Errorf("round %d client %s: evicted as %q, baseline says %q", round, e.Client, e.Class, want)
		}
	}
}
