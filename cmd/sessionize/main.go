// Command sessionize runs the paper's session-identification heuristic
// (§4.2) over a TLS transaction log and prints the detected session
// boundaries.
//
// The input CSV has the cmd/tracegen transaction format
// (session,sni,start,end,up_bytes,down_bytes); the session column is
// treated as ground truth when -score is set, and ignored otherwise.
//
// Usage:
//
//	sessionize -txns transactions.csv [-w 3] [-nmin 2] [-dmin 0.5] [-score]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"droppackets/internal/dataset"
	"droppackets/internal/sessionid"
)

func main() {
	var (
		txnsPath = flag.String("txns", "", "transactions CSV (required)")
		w        = flag.Float64("w", sessionid.PaperParams.WindowSec, "window W in seconds")
		nmin     = flag.Int("nmin", sessionid.PaperParams.MinCount, "minimum transactions in window")
		dmin     = flag.Float64("dmin", sessionid.PaperParams.MinNewFrac, "minimum new-server fraction")
		score    = flag.Bool("score", false, "score against the session column as ground truth")
	)
	flag.Parse()
	if err := run(*txnsPath, sessionid.Params{WindowSec: *w, MinCount: *nmin, MinNewFrac: *dmin}, *score); err != nil {
		fmt.Fprintln(os.Stderr, "sessionize:", err)
		os.Exit(1)
	}
}

func run(path string, params sessionid.Params, score bool) error {
	if path == "" {
		return fmt.Errorf("-txns is required")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bySession, order, err := dataset.ReadTransactionsCSV(f)
	if err != nil {
		return err
	}

	// Flatten into one time-ordered stream with ground-truth labels.
	sessionIdx := map[string]int{}
	for i, id := range order {
		sessionIdx[id] = i
	}
	var stream []sessionid.Transaction
	for id, txns := range bySession {
		firstIdx := -1
		for i, t := range txns {
			if firstIdx < 0 || t.Start < txns[firstIdx].Start {
				firstIdx = i
			}
		}
		for i, t := range txns {
			stream = append(stream, sessionid.Transaction{
				Start:      t.Start,
				End:        t.End,
				SNI:        t.SNI,
				SessionIdx: sessionIdx[id],
				First:      i == firstIdx,
			})
		}
	}
	sort.Slice(stream, func(a, b int) bool { return stream[a].Start < stream[b].Start })

	pred := sessionid.Detect(stream, params)
	boundaries := 0
	for i, isNew := range pred {
		if isNew {
			boundaries++
			fmt.Printf("session boundary at t=%.2fs (sni=%s)\n", stream[i].Start, stream[i].SNI)
		}
	}
	fmt.Printf("%d transactions, %d detected session starts\n", len(stream), boundaries)

	if score {
		conf := sessionid.Evaluate(stream, params)
		fmt.Println(conf.Format(sessionid.ClassNames))
		correct, total := sessionid.SessionsRecovered(stream, params)
		fmt.Printf("session starts recovered: %d/%d\n", correct, total)
	}
	return nil
}
