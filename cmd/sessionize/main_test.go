package main

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"droppackets/internal/capture"
	"droppackets/internal/dataset"
	"droppackets/internal/has"
	"droppackets/internal/sessionid"
)

// writeStream exports a back-to-back chain in the CSV format the tool
// expects.
func writeStream(t *testing.T, sessions int) string {
	t.Helper()
	c, err := dataset.Build(dataset.Config{Seed: 7, Sessions: sessions}, has.Svc1())
	if err != nil {
		t.Fatal(err)
	}
	lists := make([][]capture.TLSTransaction, len(c.Records))
	durations := make([]float64, len(c.Records))
	for i, r := range c.Records {
		lists[i] = r.Capture.TLS
		durations[i] = r.DurationSec
	}
	stream := sessionid.Concat(lists, durations)
	path := filepath.Join(t.TempDir(), "stream.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fmt.Fprintln(f, "session,sni,start,end,up_bytes,down_bytes")
	for _, txn := range stream {
		fmt.Fprintf(f, "Svc1-%d,%s,%.3f,%.3f,0,0\n", txn.SessionIdx, txn.SNI, txn.Start, txn.End)
	}
	return path
}

func TestRunDetectAndScore(t *testing.T) {
	path := writeStream(t, 5)
	if err := run(path, sessionid.PaperParams, true); err != nil {
		t.Fatalf("run with scoring: %v", err)
	}
	if err := run(path, sessionid.PaperParams, false); err != nil {
		t.Fatalf("run without scoring: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", sessionid.PaperParams, false); err == nil {
		t.Error("missing path accepted")
	}
	if err := run("/nonexistent/file.csv", sessionid.PaperParams, false); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.csv")
	os.WriteFile(bad, []byte("session,sni,start,end,up_bytes,down_bytes\nx,y,NOT,1,2,3\n"), 0o644)
	if err := run(bad, sessionid.PaperParams, false); err == nil {
		t.Error("malformed CSV accepted")
	}
}
