// Command tracegen generates the synthetic inputs of the evaluation:
// bandwidth traces and labeled session datasets, exported as CSV.
//
// Usage:
//
//	tracegen -what traces   [-n 100] [-seed 42] [-out traces.csv]
//	tracegen -what dataset  [-sessions 200] [-seed 42] [-out dir/]
//	tracegen -what stream   [-sessions 50] [-service Svc1] [-seed 42] [-out stream.csv]
//	tracegen -what pcap     [-service Svc1] [-session 0] [-seed 42] [-out session.pcap]
//
// In dataset mode three files are written into -out: features.csv
// (labeled 38-feature rows), transactions.csv (raw TLS transactions)
// and links.csv (per-session link ground truth). Stream mode emits one
// back-to-back chain of sessions on an absolute clock — the input
// cmd/sessionize expects.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"droppackets/internal/capture"
	"droppackets/internal/dataset"
	"droppackets/internal/has"
	"droppackets/internal/pcap"
	"droppackets/internal/sessionid"
	"droppackets/internal/stats"
	"droppackets/internal/trace"
)

func main() {
	var (
		what     = flag.String("what", "traces", "traces | dataset")
		n        = flag.Int("n", 100, "number of traces (traces mode)")
		sessions = flag.Int("sessions", 200, "sessions per service (dataset/stream mode)")
		service  = flag.String("service", "Svc1", "service profile (stream/pcap mode)")
		session  = flag.Int("session", 0, "session index (pcap mode)")
		seed     = flag.Int64("seed", 42, "generation seed")
		out      = flag.String("out", "", "output file (traces/stream) or directory (dataset); default stdout / current dir")
	)
	flag.Parse()
	var err error
	switch *what {
	case "traces":
		err = emitTraces(*n, *seed, *out)
	case "dataset":
		err = emitDataset(*sessions, *seed, *out)
	case "stream":
		err = emitStream(*sessions, *service, *seed, *out)
	case "pcap":
		err = emitPcap(*service, *session, *seed, *out)
	default:
		err = fmt.Errorf("unknown -what %q", *what)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func emitTraces(n int, seed int64, out string) error {
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	pool := trace.GeneratePool(trace.GenConfig{Seed: seed}, n, trace.DefaultClassMix)
	fmt.Fprintln(w, "trace,class,sample_start,duration,kbps")
	for _, tr := range pool.Traces {
		t := 0.0
		for _, s := range tr.Samples {
			fmt.Fprintf(w, "%s,%s,%s,%s,%s\n", tr.Name, tr.Class,
				strconv.FormatFloat(t, 'f', 2, 64),
				strconv.FormatFloat(s.Duration, 'f', 2, 64),
				strconv.FormatFloat(s.Kbps, 'f', 1, 64))
			t += s.Duration
		}
	}
	return nil
}

func emitStream(sessions int, service string, seed int64, out string) error {
	var profile *has.ServiceProfile
	for _, p := range has.Profiles() {
		if p.Name == service {
			profile = p
		}
	}
	if profile == nil {
		return fmt.Errorf("unknown service %q", service)
	}
	corpus, err := dataset.Build(dataset.Config{Seed: seed, Sessions: sessions}, profile)
	if err != nil {
		return err
	}
	lists := make([][]capture.TLSTransaction, len(corpus.Records))
	durations := make([]float64, len(corpus.Records))
	for i, r := range corpus.Records {
		lists[i] = r.Capture.TLS
		durations[i] = r.DurationSec
	}
	stream := sessionid.Concat(lists, durations)
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	fmt.Fprintln(w, "session,sni,start,end,up_bytes,down_bytes")
	for _, t := range stream {
		fmt.Fprintf(w, "%s-%d,%s,%s,%s,0,0\n", service, t.SessionIdx, t.SNI,
			strconv.FormatFloat(t.Start, 'f', 3, 64),
			strconv.FormatFloat(t.End, 'f', 3, 64))
	}
	return nil
}

func emitPcap(service string, session int, seed int64, out string) error {
	var profile *has.ServiceProfile
	for _, p := range has.Profiles() {
		if p.Name == service {
			profile = p
		}
	}
	if profile == nil {
		return fmt.Errorf("unknown service %q", service)
	}
	rec, err := dataset.GenerateSession(dataset.Config{Seed: seed, KeepPacketDetail: true}, profile, session)
	if err != nil {
		return err
	}
	pkts, err := rec.Capture.Packetize(stats.SplitRNG(seed, int64(session)))
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	pw, err := pcap.NewWriter(w, pcap.DefaultEndpoints)
	if err != nil {
		return err
	}
	if err := pw.WriteTrace(pkts); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d packets (%s session %d, %.0fs, combined QoE %s)\n",
		pw.Count(), service, session, rec.DurationSec, rec.QoE.Combined)
	return nil
}

func emitDataset(sessions int, seed int64, out string) error {
	if out == "" {
		out = "."
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	corpora, err := dataset.BuildAll(dataset.Config{Seed: seed, Sessions: sessions})
	if err != nil {
		return err
	}
	files := []struct {
		name  string
		write func(f *os.File) error
	}{
		{"features.csv", func(f *os.File) error { return dataset.WriteFeaturesCSV(f, corpora) }},
		{"transactions.csv", func(f *os.File) error { return dataset.WriteTransactionsCSV(f, corpora) }},
		{"links.csv", func(f *os.File) error { return dataset.WriteTracesCSV(f, corpora) }},
	}
	for _, spec := range files {
		path := filepath.Join(out, spec.name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := spec.write(f); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	return nil
}
