package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"droppackets/internal/pcap"
)

func TestEmitTraces(t *testing.T) {
	out := filepath.Join(t.TempDir(), "traces.csv")
	if err := emitTraces(5, 1, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if !strings.HasPrefix(lines[0], "trace,class") {
		t.Errorf("header %q", lines[0])
	}
	if len(lines) < 10 {
		t.Errorf("only %d lines for 5 traces", len(lines))
	}
}

func TestEmitDataset(t *testing.T) {
	dir := t.TempDir()
	if err := emitDataset(6, 2, dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"features.csv", "transactions.csv", "links.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("%s missing: %v", name, err)
		}
	}
}

func TestEmitStream(t *testing.T) {
	out := filepath.Join(t.TempDir(), "stream.csv")
	if err := emitStream(4, "Svc1", 3, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Svc1-0") {
		t.Error("stream missing session ids")
	}
	if err := emitStream(2, "SvcX", 3, out); err == nil {
		t.Error("unknown service accepted")
	}
}

func TestEmitPcap(t *testing.T) {
	out := filepath.Join(t.TempDir(), "s.pcap")
	if err := emitPcap("Svc1", 0, 4, out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		t.Fatalf("output not a valid pcap: %v", err)
	}
	pkts, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) < 100 {
		t.Errorf("only %d packets", len(pkts))
	}
	if err := emitPcap("SvcX", 0, 4, out); err == nil {
		t.Error("unknown service accepted")
	}
}
