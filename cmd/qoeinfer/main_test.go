package main

import (
	"os"
	"path/filepath"
	"testing"

	"droppackets/internal/dataset"
	"droppackets/internal/has"
	"droppackets/internal/squidlog"
)

// writeTinyCSV exports a 4-session corpus for classification input.
func writeTinyCSV(t *testing.T) string {
	t.Helper()
	c, err := dataset.Build(dataset.Config{Seed: 8, Sessions: 4}, has.Svc1())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "txns.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := dataset.WriteTransactionsCSV(f, []*dataset.Corpus{c}); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunTrainClassifySaveLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration is slow")
	}
	txns := writeTinyCSV(t)
	model := filepath.Join(t.TempDir(), "model.json")
	if err := run(txns, "", "Svc1", "combined", 60, 1, 8, model, ""); err != nil {
		t.Fatalf("train+save: %v", err)
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatalf("model not written: %v", err)
	}
	if err := run(txns, "", "Svc1", "combined", 0, 1, 8, "", model); err != nil {
		t.Fatalf("load+classify: %v", err)
	}
}

func TestRunSquidInput(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration is slow")
	}
	c, err := dataset.Build(dataset.Config{Seed: 9, Sessions: 2}, has.Svc1())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "access.log")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range c.Records {
		client := []string{"10.0.0.1", "10.0.0.2"}[i]
		for _, txn := range rec.Capture.TLS {
			f.WriteString(squidlog.FormatEntry(client, txn, 1700000000) + "\n")
		}
	}
	f.Close()
	if err := run("", path, "Svc1", "combined", 60, 1, 8, "", ""); err != nil {
		t.Fatalf("squid input: %v", err)
	}
}

func TestRunArgumentValidation(t *testing.T) {
	if err := run("", "", "Svc1", "combined", 10, 1, 5, "", ""); err == nil {
		t.Error("missing input accepted")
	}
	if err := run("a.csv", "b.log", "Svc1", "combined", 10, 1, 5, "", ""); err == nil {
		t.Error("both inputs accepted")
	}
	if err := run("nonexistent.csv", "", "Svc1", "badmetric", 10, 1, 5, "", ""); err == nil {
		t.Error("bad metric accepted")
	}
	if err := run(writeTinyCSV(t), "", "SvcX", "combined", 10, 1, 5, "", ""); err == nil {
		t.Error("bad service accepted")
	}
}

func TestParseMetric(t *testing.T) {
	for _, name := range []string{"rebuffer", "quality", "combined"} {
		if _, err := parseMetric(name); err != nil {
			t.Errorf("parseMetric(%s): %v", name, err)
		}
	}
	if _, err := parseMetric("mos"); err == nil {
		t.Error("unknown metric accepted")
	}
}
