// Command qoeinfer classifies per-session video QoE from TLS
// transaction logs. It trains on a simulated labeled corpus for the
// chosen service profile, then classifies each session found in the
// input CSV (format: session,sni,start,end,up_bytes,down_bytes — see
// cmd/tracegen).
//
// Usage:
//
//	qoeinfer -txns transactions.csv [-service Svc1] [-metric combined]
//	         [-train-sessions 600] [-seed 42] [-trees 100]
//	         [-save model.json | -model model.json]
//	qoeinfer -squid access.log [...]
//
// With -save, the trained model is written to disk after training —
// including the training corpus's per-feature baseline, which lets
// cmd/qoeproxy export drift gauges for the live traffic it classifies;
// with -model, training is skipped and the saved model is used.
// With -squid, a Squid access log is ingested instead of a CSV: each
// client address's CONNECT tunnels are classified as one session (run
// cmd/sessionize first if clients watch several videos back-to-back).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"droppackets/internal/capture"
	"droppackets/internal/core"
	"droppackets/internal/dataset"
	"droppackets/internal/has"
	"droppackets/internal/ml/forest"
	"droppackets/internal/qoe"
	"droppackets/internal/squidlog"
)

func main() {
	var (
		txnsPath  = flag.String("txns", "", "transactions CSV to classify (required)")
		service   = flag.String("service", "Svc1", "service profile to train on (Svc1|Svc2|Svc3)")
		metric    = flag.String("metric", "combined", "QoE metric: rebuffer|quality|combined")
		trainN    = flag.Int("train-sessions", 600, "simulated training sessions")
		seed      = flag.Int64("seed", 42, "training seed")
		trees     = flag.Int("trees", 100, "random-forest size")
		savePath  = flag.String("save", "", "write the trained model to this file")
		loadPath  = flag.String("model", "", "load a saved model instead of training")
		squidPath = flag.String("squid", "", "Squid access.log to classify (alternative to -txns)")
	)
	flag.Parse()
	if err := run(*txnsPath, *squidPath, *service, *metric, *trainN, *seed, *trees, *savePath, *loadPath); err != nil {
		fmt.Fprintln(os.Stderr, "qoeinfer:", err)
		os.Exit(1)
	}
}

func parseMetric(s string) (qoe.MetricKind, error) {
	switch s {
	case "rebuffer":
		return qoe.MetricRebuffer, nil
	case "quality":
		return qoe.MetricQuality, nil
	case "combined":
		return qoe.MetricCombined, nil
	default:
		return 0, fmt.Errorf("unknown metric %q", s)
	}
}

func findProfile(name string) (*has.ServiceProfile, error) {
	for _, p := range has.Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("unknown service %q", name)
}

func run(txnsPath, squidPath, service, metricName string, trainN int, seed int64, trees int, savePath, loadPath string) error {
	if (txnsPath == "") == (squidPath == "") {
		return fmt.Errorf("exactly one of -txns or -squid is required")
	}
	metric, err := parseMetric(metricName)
	if err != nil {
		return err
	}

	var sessions map[string][]capture.TLSTransaction
	var order []string
	if txnsPath != "" {
		f, err := os.Open(txnsPath)
		if err != nil {
			return err
		}
		sessions, order, err = dataset.ReadTransactionsCSV(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		f, err := os.Open(squidPath)
		if err != nil {
			return err
		}
		entries, err := squidlog.Parse(f)
		f.Close()
		if err != nil {
			return err
		}
		sessions = squidlog.GroupByClient(entries)
		for client := range sessions {
			order = append(order, client)
		}
		sort.Strings(order)
	}

	var est *core.Estimator
	if loadPath != "" {
		mf, err := os.Open(loadPath)
		if err != nil {
			return err
		}
		est, err = core.LoadEstimator(mf)
		mf.Close()
		if err != nil {
			return err
		}
		metric = est.Metric()
		fmt.Fprintf(os.Stderr, "loaded model from %s (metric: %s)\n", loadPath, metric)
	} else {
		profile, err := findProfile(service)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "training on %d simulated %s sessions...\n", trainN, service)
		corpus, err := dataset.Build(dataset.Config{Seed: seed, Sessions: trainN}, profile)
		if err != nil {
			return err
		}
		var training []core.TrainingSession
		for _, r := range corpus.Records {
			training = append(training, core.TrainingSession{TLS: r.Capture.TLS, QoE: r.QoE})
		}
		est = core.NewEstimator(core.Config{
			Metric: metric,
			Forest: forest.Config{NumTrees: trees, MinLeaf: 2, Seed: seed},
		})
		if err := est.Train(training); err != nil {
			return err
		}
		if savePath != "" {
			sf, err := os.Create(savePath)
			if err != nil {
				return err
			}
			if err := est.Save(sf); err != nil {
				sf.Close()
				return err
			}
			if err := sf.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "saved model to %s (with training baseline for drift gauges)\n", savePath)
		}
	}

	names := core.ClassNames(metric)
	fmt.Printf("%-24s %-8s %s\n", "session", "class", "probabilities")
	for _, id := range order {
		probs, err := est.ClassifyProba(sortTxns(sessions[id]))
		if err != nil {
			return err
		}
		best := 0
		for i, p := range probs {
			if p > probs[best] {
				best = i
			}
		}
		fmt.Printf("%-24s %-8s", id, names[best])
		for i, p := range probs {
			fmt.Printf(" %s=%.2f", names[i], p)
		}
		fmt.Println()
	}
	return nil
}

// sortTxns orders transactions by start time (feature extraction
// expects time order for IAT).
func sortTxns(txns []capture.TLSTransaction) []capture.TLSTransaction {
	out := append([]capture.TLSTransaction(nil), txns...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Start < out[j-1].Start; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
