// Command qoebench regenerates the paper's tables and figures from
// simulated corpora and prints them in paper-style text form.
//
// Usage:
//
//	qoebench [-experiment all|fig2|fig3|fig4|fig5|fig6|fig7|table1|table2|
//	          table3|table4|table5|ablations|extensions]
//	         [-sessions N] [-seed S] [-folds K] [-trees T]
//
// With -sessions 0 (default) the paper's corpus sizes are used
// (Svc1: 2111, Svc2: 2216, Svc3: 1440); smaller values trade fidelity
// for speed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"droppackets/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "which experiment to run (comma-separated, or 'all')")
		sessions   = flag.Int("sessions", 0, "sessions per service (0 = paper sizes)")
		seed       = flag.Int64("seed", 42, "corpus and training seed")
		folds      = flag.Int("folds", 5, "cross-validation folds")
		trees      = flag.Int("trees", 100, "random-forest size")
	)
	flag.Parse()
	if err := run(*experiment, experiments.Config{Seed: *seed, Sessions: *sessions, Folds: *folds, Trees: *trees}); err != nil {
		fmt.Fprintln(os.Stderr, "qoebench:", err)
		os.Exit(1)
	}
}

func run(which string, cfg experiments.Config) error {
	s := experiments.NewSuite(cfg)
	wanted := map[string]bool{}
	for _, w := range strings.Split(which, ",") {
		wanted[strings.TrimSpace(strings.ToLower(w))] = true
	}
	all := wanted["all"]
	ran := 0
	steps := []struct {
		name string
		run  func() (string, error)
	}{
		{"table1", func() (string, error) { return experiments.Table1(), nil }},
		{"fig2", func() (string, error) { r, err := s.Fig2(); return format(r, err) }},
		{"fig3", func() (string, error) { r, err := s.Fig3(); return format(r, err) }},
		{"fig4", func() (string, error) {
			r, err := s.Fig4()
			if err != nil {
				return "", err
			}
			return experiments.FormatFig4(r), nil
		}},
		{"fig5", func() (string, error) {
			r, err := s.Fig5()
			if err != nil {
				return "", err
			}
			return experiments.FormatFig5(r), nil
		}},
		{"table2", func() (string, error) { r, err := s.Table2(); return format(r, err) }},
		{"table3", func() (string, error) {
			r, err := s.Table3()
			if err != nil {
				return "", err
			}
			return experiments.FormatTable3(r), nil
		}},
		{"fig6", func() (string, error) {
			r, err := s.Fig6()
			if err != nil {
				return "", err
			}
			return experiments.FormatFig6(r), nil
		}},
		{"fig7", func() (string, error) {
			// Widen the paper's exact SDR bands x3 so all QoE classes
			// have instances in the simulated corpus.
			r, err := s.Fig7(3)
			if err != nil {
				return "", err
			}
			return experiments.FormatFig7(r), nil
		}},
		{"table4", func() (string, error) {
			r, err := s.Table4()
			if err != nil {
				return "", err
			}
			return experiments.FormatTable4(r), nil
		}},
		{"table5", func() (string, error) { r, err := s.Table5(); return format(r, err) }},
		{"ablations", func() (string, error) { return runAblations(s) }},
		{"extensions", func() (string, error) { return runExtensions(s) }},
	}
	for _, step := range steps {
		if !all && !wanted[step.name] {
			continue
		}
		start := time.Now()
		out, err := step.run()
		if err != nil {
			return fmt.Errorf("%s: %w", step.name, err)
		}
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", step.name, time.Since(start).Seconds(), out)
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matched %q", which)
	}
	return nil
}

// format adapts Format()-carrying results.
func format(r interface{ Format() string }, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return r.Format(), nil
}

func runAblations(s *experiments.Suite) (string, error) {
	var b strings.Builder
	if rows, err := s.AblationTemporalGrid(); err != nil {
		return "", err
	} else {
		b.WriteString(experiments.FormatTemporalGrid(rows))
	}
	if rows, err := s.AblationForestSize(); err != nil {
		return "", err
	} else {
		b.WriteString(experiments.FormatForestSize(rows))
	}
	if rows, err := s.AblationModelFamily(); err != nil {
		return "", err
	} else {
		b.WriteString(experiments.FormatModelFamily(rows))
	}
	if rows, err := s.AblationSessionIDThresholds(); err != nil {
		return "", err
	} else {
		b.WriteString(experiments.FormatSessionID(rows))
	}
	if rows, err := s.AblationConnReuse(); err != nil {
		return "", err
	} else {
		b.WriteString(experiments.FormatConnReuse(rows))
	}
	if rows, err := s.AblationABRDesign(); err != nil {
		return "", err
	} else {
		b.WriteString(experiments.FormatABRDesign(rows))
	}
	return b.String(), nil
}

func runExtensions(s *experiments.Suite) (string, error) {
	var b strings.Builder
	if rows, err := s.ExtensionFlowComparison(); err != nil {
		return "", err
	} else {
		b.WriteString(experiments.FormatFlowComparison(rows))
	}
	if rows, err := s.ExtensionUserInteractions(); err != nil {
		return "", err
	} else {
		b.WriteString(experiments.FormatUserInteractions(rows))
	}
	if rows, err := s.ExtensionCrossService(); err != nil {
		return "", err
	} else {
		b.WriteString(experiments.FormatCrossService(rows))
	}
	if rows, err := s.ExtensionCrossNetwork(); err != nil {
		return "", err
	} else {
		b.WriteString(experiments.FormatCrossNetwork(rows))
	}
	if rows, err := s.ExtensionEarlyDetection(); err != nil {
		return "", err
	} else {
		b.WriteString(experiments.FormatEarlyDetection(rows))
	}
	return b.String(), nil
}
