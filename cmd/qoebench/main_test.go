package main

import (
	"testing"

	"droppackets/internal/experiments"
)

// tinyCfg keeps CLI tests fast.
var tinyCfg = experiments.Config{Seed: 5, Sessions: 80, Folds: 3, Trees: 8}

func TestRunSelectedExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration is slow")
	}
	if err := run("table1,fig3,fig2", tinyCfg); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nosuch", tinyCfg); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunCaseInsensitive(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration is slow")
	}
	if err := run(" TABLE1 ", tinyCfg); err != nil {
		t.Errorf("case/space handling: %v", err)
	}
}
