package main

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"droppackets/internal/tlsproxy"
)

func testPool(t *testing.T) *pool {
	t.Helper()
	p, err := buildPool(11, 12)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGenerateWorkloadShapes(t *testing.T) {
	p := testPool(t)
	for _, shape := range []string{"steady", "bursty"} {
		t.Run(shape, func(t *testing.T) {
			cfg := genConfig{clients: 200, seed: 3, ramp: 30, shape: shape}
			w, err := p.generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if w.clients != 200 || len(w.records) == 0 {
				t.Fatalf("clients = %d, records = %d", w.clients, len(w.records))
			}
			// Determinism: same config, same records.
			again, err := p.generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(again.records) != len(w.records) {
				t.Fatalf("regeneration changed record count: %d vs %d", len(again.records), len(w.records))
			}
			for i := range w.records {
				if w.records[i] != again.records[i] {
					t.Fatalf("record %d differs between generations", i)
				}
			}
			// Per-client start order and distinct hosts — the RecordSource
			// delivery contract.
			lastStart := map[string]float64{}
			hosts := map[string]bool{}
			for _, r := range w.records {
				if r.Start < lastStart[r.Client] {
					t.Fatalf("client %s records out of start order", r.Client)
				}
				lastStart[r.Client] = r.Start
				if r.End < r.Start || r.Start < 0 {
					t.Fatalf("invalid span: %+v", r)
				}
				hosts[r.Client] = true
			}
			if len(hosts) != 200 {
				t.Fatalf("%d distinct clients, want 200", len(hosts))
			}
			// With a 30s ramp and sessions lasting minutes, most clients
			// overlap: the workload really is concurrent, not sequential.
			if w.peakConcurrent < 100 {
				t.Errorf("peak concurrency %d of 200 clients; arrivals too spread", w.peakConcurrent)
			}
			if w.simSeconds <= 0 {
				t.Error("no simulated span")
			}
		})
	}
	if _, err := p.generate(genConfig{clients: 5, seed: 1, ramp: 10, shape: "sawtooth"}); err == nil {
		t.Error("unknown shape accepted")
	}
}

func TestShapesDiffer(t *testing.T) {
	p := testPool(t)
	steady, err := p.generate(genConfig{clients: 300, seed: 3, ramp: 30, shape: "steady"})
	if err != nil {
		t.Fatal(err)
	}
	bursty, err := p.generate(genConfig{clients: 300, seed: 3, ramp: 30, shape: "bursty"})
	if err != nil {
		t.Fatal(err)
	}
	// Bursty arrivals concentrate: the spread of session starts must be
	// visibly tighter than steady's uniform ramp.
	spread := func(w *workload) float64 {
		starts := map[string]float64{}
		for _, r := range w.records {
			if _, ok := starts[r.Client]; !ok {
				starts[r.Client] = r.Start
			}
		}
		var mean, n float64
		for _, s := range starts {
			mean += s
			n++
		}
		mean /= n
		var varsum float64
		for _, s := range starts {
			varsum += (s - mean) * (s - mean)
		}
		return math.Sqrt(varsum / n)
	}
	if s, b := spread(steady), spread(bursty); b >= s {
		t.Errorf("bursty start stddev %.2fs not tighter than steady %.2fs", b, s)
	}
}

func TestClientHostPortUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 30000; i++ {
		h := clientHostPort(i)
		if seen[h] {
			t.Fatalf("duplicate host %s at %d", h, i)
		}
		seen[h] = true
	}
}

const sampleScrape = `# HELP qoeproxy_transactions_total Completed.
# TYPE qoeproxy_transactions_total counter
qoeproxy_transactions_total 1234
# TYPE qoeproxy_qoe_predictions_total counter
qoeproxy_qoe_predictions_total{class="low"} 7
# TYPE qoeproxy_gc_pause_seconds_total counter
qoeproxy_gc_pause_seconds_total 0.0625
# TYPE qoeproxy_shard_classify_seconds histogram
qoeproxy_shard_classify_seconds_bucket{le="0.001"} 10
qoeproxy_shard_classify_seconds_bucket{le="0.01"} 70
qoeproxy_shard_classify_seconds_bucket{le="0.1"} 100
qoeproxy_shard_classify_seconds_bucket{le="+Inf"} 100
qoeproxy_shard_classify_seconds_sum 2.5
qoeproxy_shard_classify_seconds_count 100
`

func TestParseMetrics(t *testing.T) {
	s, err := parseMetrics(sampleScrape)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.value("qoeproxy_transactions_total"); got != 1234 {
		t.Errorf("transactions = %g", got)
	}
	if got := s.value("qoeproxy_gc_pause_seconds_total"); got != 0.0625 {
		t.Errorf("gc pause = %g", got)
	}
	h := s.hists["qoeproxy_shard_classify_seconds"]
	if h == nil {
		t.Fatal("histogram not reassembled")
	}
	if h.total != 100 || h.sum != 2.5 || len(h.bounds) != 3 {
		t.Fatalf("histogram = %+v", h)
	}
	// p50: rank 50 inside (0.001, 0.01], 10 -> 70 cumulative:
	// 0.001 + (0.01-0.001)*(50-10)/60 = 0.007
	if got := h.quantile(0.5); math.Abs(got-0.007) > 1e-12 {
		t.Errorf("p50 = %g, want 0.007", got)
	}
	// p99: rank 99 inside (0.01, 0.1]: 0.01 + 0.09*(99-70)/30 = 0.097
	if got := h.quantile(0.99); math.Abs(got-0.097) > 1e-12 {
		t.Errorf("p99 = %g, want 0.097", got)
	}
	sum := summarize(h)
	if sum.Count != 100 || sum.Sum != 2.5 || sum.P50 == 0 || sum.P95 == 0 {
		t.Errorf("summary = %+v", sum)
	}
	if got := summarize(nil); got.Count != 0 {
		t.Errorf("nil summary = %+v", got)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty *histData
	if got := empty.quantile(0.5); got != 0 {
		t.Errorf("nil quantile = %g", got)
	}
	h := &histData{bounds: []float64{1}, counts: []int64{0}, total: 5}
	// All observations beyond the last finite bound clamp to it.
	if got := h.quantile(0.5); got != 1 {
		t.Errorf("overflow quantile = %g, want clamp to 1", got)
	}
}

func TestParseMetricsRejectsGarbage(t *testing.T) {
	if _, err := parseMetrics("qoeproxy_x notanumber\n"); err == nil {
		t.Error("bad value accepted")
	}
	if _, err := parseMetrics("lonely-token\n"); err == nil {
		t.Error("valueless line accepted")
	}
}

func TestWorkloadCSVFitsDaemonReader(t *testing.T) {
	p := testPool(t)
	w, err := p.generate(genConfig{clients: 40, seed: 9, ramp: 10, shape: "steady"})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tlsproxy.WriteWorkload(&b, w.records); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "client,sni,start_sec,end_sec,up_bytes,down_bytes\n") {
		t.Errorf("unexpected header: %q", strings.SplitN(b.String(), "\n", 2)[0])
	}
	lines := strings.Count(b.String(), "\n")
	if lines != len(w.records)+1 {
		t.Errorf("%d CSV lines, want %d", lines, len(w.records)+1)
	}
}

func TestCutLabel(t *testing.T) {
	if v, ok := cutLabel(`{le="0.5",job="x"}`, "le"); !ok || v != "0.5" {
		t.Errorf("cutLabel le = %q, %v", v, ok)
	}
	if _, ok := cutLabel(`{job="x"}`, "le"); ok {
		t.Error("missing label found")
	}
	if _, ok := cutLabel(fmt.Sprintf("{le=%q", "unterminated")[:5], "le"); ok {
		t.Error("truncated label found")
	}
}
