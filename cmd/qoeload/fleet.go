package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"
	"syscall"
	"time"

	"droppackets/internal/cluster"
	"droppackets/internal/tlsproxy"
)

// This file is the fleet half of the harness: -instances N boots N
// qoeproxy daemons behind one consistent-hash ring (the same
// internal/cluster ring the daemons load), replays the IDENTICAL
// workload into every member — the production shape, where each
// instance sees the shared record stream and its ring filter skips
// clients it does not own — and verifies the fleet covers the workload
// exactly once: per-member owned + skipped == total records, the
// owned sum across members == total records (zero gaps, zero
// overlap), and partitions_owned sums to the ring's total. Each member
// then receives a SIGTERM with -snapshot set, and the harness checks
// every member exited cleanly leaving a loadable state snapshot — the
// drain-to-handoff path under real load.
//
// Each member runs with GOMAXPROCS = max(1, cpus/N) so an N-instance
// run models N partitions of the same box rather than N daemons
// fighting for every core; the per-run CPU topology is recorded in
// the report.

// fleetInstance is one member's measurements in the fleet section.
type fleetInstance struct {
	ID              string      `json:"id"`
	Gomaxprocs      int         `json:"gomaxprocs"`
	OwnedRecords    int         `json:"owned_records"`
	Transactions    int64       `json:"transactions_total"`
	ClientsSkipped  int64       `json:"cluster_clients_skipped_total"`
	PartitionsOwned int64       `json:"partitions_owned"`
	ReplayWall      float64     `json:"replay_wall_seconds"`
	OwnedPerSecond  float64     `json:"owned_records_per_second"`
	ClassifyRuns    int64       `json:"classification_runs_total"`
	HealthzInstance string      `json:"healthz_instance"`
	SnapshotClients int         `json:"snapshot_clients"`
	SnapshotWritten bool        `json:"snapshot_written"`
	CleanExit       bool        `json:"clean_exit"`
	ShardClassify   histSummary `json:"shard_classify_seconds"`
	Inference       histSummary `json:"inference_seconds"`
}

// fleetResult is one instance-count entry in the report's fleet
// section.
type fleetResult struct {
	Instances        int     `json:"instances"`
	Records          int     `json:"records"`
	Clients          int     `json:"clients"`
	CPUsOnline       int     `json:"cpus_online"`
	Gomaxprocs       int     `json:"gomaxprocs_per_instance"`
	PartitionsTotal  int     `json:"partitions_total"`
	PartitionsSum    int64   `json:"partitions_owned_sum"`
	OwnedSum         int64   `json:"transactions_sum"`
	SkippedSum       int64   `json:"skipped_sum"`
	FleetWallSeconds float64 `json:"fleet_wall_seconds"`
	// AggregateRecordsPerSecond is the honest fleet throughput: the
	// whole workload over the slowest member's replay wall (the fleet
	// is done when its last member is).
	AggregateRecordsPerSecond float64                   `json:"aggregate_records_per_second"`
	PerInstance               map[string]*fleetInstance `json:"per_instance"`
	Failures                  []string                  `json:"failures,omitempty"`
}

// fleetIDs names the members of an n-instance fleet.
func fleetIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("i%d", i)
	}
	return ids
}

// runFleet boots an n-member fleet against the shared workload and
// collects the coverage checks and measurements.
func runFleet(o loadOptions, bin, modelPath, dir string, w *workload, n int) (*fleetResult, error) {
	res := &fleetResult{
		Instances:   n,
		Records:     len(w.records),
		Clients:     w.clients,
		CPUsOnline:  runtime.NumCPU(),
		Gomaxprocs:  max(1, runtime.NumCPU()/n),
		PerInstance: map[string]*fleetInstance{},
	}
	fail := func(format string, args ...any) {
		res.Failures = append(res.Failures, fmt.Sprintf(format, args...))
	}

	cfg := &cluster.Config{Version: 1, Instances: nil}
	for _, id := range fleetIDs(n) {
		cfg.Instances = append(cfg.Instances, cluster.Instance{ID: id})
	}
	ring, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	res.PartitionsTotal = ring.TotalPartitions()
	cfgPath := filepath.Join(dir, fmt.Sprintf("cluster-%d.json", n))
	raw, err := json.Marshal(cfg)
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(cfgPath, raw, 0o644); err != nil {
		return nil, err
	}

	// The ring tells the harness, ahead of time, exactly how many of
	// the shared records each member must own — the settle loop and the
	// coverage checks compare the daemons against this ground truth.
	// Ownership is keyed by client host, port stripped, exactly as the
	// daemon keys its client map.
	ownedRecords := map[string]int{}
	for _, r := range w.records {
		client := r.Client
		if host, _, err := net.SplitHostPort(client); err == nil {
			client = host
		}
		ownedRecords[ring.Owner(client)]++
	}

	csvPath := filepath.Join(dir, fmt.Sprintf("fleet-%d.workload.csv", n))
	f, err := os.Create(csvPath)
	if err != nil {
		return nil, err
	}
	if err := tlsproxy.WriteWorkload(f, w.records); err != nil {
		f.Close()
		return nil, err
	}
	f.Close()

	type member struct {
		id       string
		inst     *fleetInstance
		cmd      *exec.Cmd
		ev       *daemonEvents
		snapPath string
		base     string // metrics base URL
		err      error
	}
	members := make([]*member, n)
	start := time.Now()
	for i, id := range fleetIDs(n) {
		inst := &fleetInstance{ID: id, Gomaxprocs: res.Gomaxprocs, OwnedRecords: ownedRecords[id]}
		res.PerInstance[id] = inst
		m := &member{id: id, inst: inst, snapPath: filepath.Join(dir, fmt.Sprintf("fleet-%d-%s.snapshot.json", n, id))}
		members[i] = m
		args := []string{
			"-listen", "127.0.0.1:0",
			"-upstream", "127.0.0.1:1",
			"-model", modelPath,
			"-metrics", "127.0.0.1:0",
			"-out", filepath.Join(dir, fmt.Sprintf("fleet-%d-%s.out.csv", n, id)),
			"-classify-every", o.classifyEvery.String(),
			"-window", o.window.String(),
			"-classify-batch", fmt.Sprint(o.classifyBatch),
			"-cluster-config", cfgPath,
			"-instance-id", id,
			"-snapshot", m.snapPath,
			"-replay", csvPath,
			"-replay-speed", fmt.Sprint(o.speed),
			"-replay-workers", fmt.Sprint(o.replayWorkers),
		}
		if o.shards > 0 {
			args = append(args, "-shards", fmt.Sprint(o.shards))
		}
		if o.classifyWorkers > 0 {
			args = append(args, "-classify-workers", fmt.Sprint(o.classifyWorkers))
		}
		m.cmd = exec.Command(bin, args...)
		m.cmd.Env = append(os.Environ(), fmt.Sprintf("GOMAXPROCS=%d", res.Gomaxprocs))
		stderr, err := m.cmd.StderrPipe()
		if err != nil {
			return nil, err
		}
		m.ev = &daemonEvents{
			listenAddr:  make(chan string, 1),
			metricsAddr: make(chan string, 1),
			replayDone:  make(chan replayOutcome, 1),
		}
		go watchStderr(stderr, m.ev)
		if err := m.cmd.Start(); err != nil {
			return nil, fmt.Errorf("starting member %s: %w", id, err)
		}
		defer m.cmd.Process.Kill()
	}

	// Drive every member to completion concurrently: wait for its
	// replay, let it settle on exactly its owned share, scrape finals.
	var wg sync.WaitGroup
	for _, m := range members {
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			select {
			case addr := <-m.ev.metricsAddr:
				m.base = "http://" + addr
			case <-time.After(30 * time.Second):
				m.err = fmt.Errorf("member %s never reported its metrics address", m.id)
				return
			}
			var outcome replayOutcome
			select {
			case outcome = <-m.ev.replayDone:
			case <-time.After(10 * time.Minute):
				m.err = fmt.Errorf("member %s replay did not complete within 10m", m.id)
				return
			}
			m.inst.ReplayWall = outcome.wallSeconds
			if outcome.wallSeconds > 0 {
				m.inst.OwnedPerSecond = float64(m.inst.OwnedRecords) / outcome.wallSeconds
			}
			deadline := time.Now().Add(o.settle)
			var last *scrapeData
			for {
				last = scrapeMember(m.base)
				if last != nil &&
					last.value("qoeproxy_transactions_total") == float64(m.inst.OwnedRecords) &&
					last.value("qoeproxy_classification_runs_total") >= 1 {
					break
				}
				if time.Now().After(deadline) {
					m.err = fmt.Errorf("member %s did not settle within %s", m.id, o.settle)
					if last == nil {
						return
					}
					break
				}
				time.Sleep(200 * time.Millisecond)
			}
			m.inst.Transactions = int64(last.value("qoeproxy_transactions_total"))
			m.inst.ClientsSkipped = int64(last.value("qoeproxy_cluster_clients_skipped_total"))
			m.inst.PartitionsOwned = int64(last.value("qoeproxy_partitions_owned"))
			m.inst.ClassifyRuns = int64(last.value("qoeproxy_classification_runs_total"))
			m.inst.ShardClassify = summarize(last.hists["qoeproxy_shard_classify_seconds"])
			m.inst.Inference = summarize(last.hists["qoeproxy_inference_seconds"])
			if resp, err := http.Get(m.base + "/healthz"); err == nil {
				var h struct {
					Instance string `json:"instance"`
				}
				json.NewDecoder(resp.Body).Decode(&h)
				resp.Body.Close()
				m.inst.HealthzInstance = h.Instance
			}
		}(m)
	}
	wg.Wait()
	res.FleetWallSeconds = time.Since(start).Seconds()
	for _, m := range members {
		if m.err != nil {
			fail("%v", m.err)
		}
	}

	// SIGTERM every member: the drain-to-snapshot path under load.
	for _, m := range members {
		m.cmd.Process.Signal(syscall.SIGTERM)
	}
	for _, m := range members {
		exited := make(chan error, 1)
		go func(m *member) { exited <- m.cmd.Wait() }(m)
		select {
		case err := <-exited:
			m.inst.CleanExit = err == nil
			if err != nil {
				fail("member %s exited with %v", m.id, err)
			}
		case <-time.After(60 * time.Second):
			fail("member %s did not exit within 60s of SIGTERM", m.id)
			m.cmd.Process.Kill()
			<-exited
		}
		m.inst.SnapshotClients, m.inst.SnapshotWritten = inspectSnapshot(m.snapPath)
		if !m.inst.SnapshotWritten {
			fail("member %s left no loadable snapshot at %s", m.id, m.snapPath)
		}
	}

	// Coverage: exactly-once across the fleet.
	for _, m := range members {
		res.OwnedSum += m.inst.Transactions
		res.SkippedSum += m.inst.ClientsSkipped
		res.PartitionsSum += m.inst.PartitionsOwned
		if m.inst.Transactions != int64(m.inst.OwnedRecords) {
			fail("member %s committed %d transactions, ring assigns it %d (overlap or gap)",
				m.id, m.inst.Transactions, m.inst.OwnedRecords)
		}
		if got, want := m.inst.Transactions+m.inst.ClientsSkipped, int64(len(w.records)); got != want {
			fail("member %s owned+skipped = %d, want %d (records lost before the ring filter)",
				m.id, got, want)
		}
		if m.inst.HealthzInstance != m.id {
			fail("member %s healthz reports instance %q", m.id, m.inst.HealthzInstance)
		}
	}
	if res.OwnedSum != int64(len(w.records)) {
		fail("fleet committed %d transactions, workload has %d (must cover exactly once)",
			res.OwnedSum, len(w.records))
	}
	if res.PartitionsSum != int64(res.PartitionsTotal) {
		fail("partitions_owned sums to %d, ring total is %d", res.PartitionsSum, res.PartitionsTotal)
	}
	slowest := 0.0
	for _, m := range members {
		if m.inst.ReplayWall > slowest {
			slowest = m.inst.ReplayWall
		}
	}
	if slowest > 0 {
		res.AggregateRecordsPerSecond = float64(len(w.records)) / slowest
	}
	return res, nil
}

// scrapeMember fetches and parses one member's /metrics, nil on any
// failure (the caller retries).
func scrapeMember(base string) *scrapeData {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil
	}
	s, err := parseMetrics(string(body))
	if err != nil {
		return nil
	}
	return s
}

// inspectSnapshot checks a member's shutdown snapshot is a loadable
// version-1 envelope and reports how many clients it carries.
func inspectSnapshot(path string) (clients int, ok bool) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, false
	}
	var snap struct {
		Version int `json:"version"`
		Clients []struct {
			Client string `json:"client"`
		} `json:"clients"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil || snap.Version != 1 {
		return 0, false
	}
	return len(snap.Clients), true
}
