package main

import (
	"fmt"
	"strconv"
	"strings"
)

// This file reads the daemon back: a minimal parser for the Prometheus
// text exposition format (unlabeled series plus histograms — all
// qoeload consumes) and the percentile interpolation that turns
// qoeproxy_shard_classify_seconds buckets into p50/p95/p99.

// histData is one parsed histogram family.
type histData struct {
	bounds []float64 // finite le bounds, ascending
	counts []int64   // cumulative count at each bound
	total  int64     // cumulative count at +Inf
	sum    float64
}

// scrapeData is one parsed /metrics response.
type scrapeData struct {
	values map[string]float64
	hists  map[string]*histData
}

// value returns an unlabeled series, or 0 when absent.
func (s *scrapeData) value(name string) float64 { return s.values[name] }

// parseMetrics parses a Prometheus text scrape, keeping unlabeled
// sample values and reassembling histogram bucket series. Labeled
// non-histogram series (the per-class prediction counters) are
// ignored; qoeload reads totals, not breakdowns.
func parseMetrics(text string) (*scrapeData, error) {
	s := &scrapeData{values: map[string]float64{}, hists: map[string]*histData{}}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("metrics line %d: no value: %q", ln+1, line)
		}
		series, valText := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valText, 64)
		if err != nil && valText != "+Inf" {
			return nil, fmt.Errorf("metrics line %d: bad value %q", ln+1, valText)
		}
		if b := strings.IndexByte(series, '{'); b >= 0 {
			name, labels := series[:b], series[b:]
			base, ok := strings.CutSuffix(name, "_bucket")
			if !ok {
				continue // labeled non-histogram series: not needed
			}
			le, ok := cutLabel(labels, "le")
			if !ok {
				continue
			}
			h := s.hists[base]
			if h == nil {
				h = &histData{}
				s.hists[base] = h
			}
			if le == "+Inf" {
				h.total = int64(val)
				continue
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return nil, fmt.Errorf("metrics line %d: bad le %q", ln+1, le)
			}
			h.bounds = append(h.bounds, bound)
			h.counts = append(h.counts, int64(val))
			continue
		}
		if base, ok := strings.CutSuffix(series, "_sum"); ok && s.hists[base] != nil {
			s.hists[base].sum = val
		}
		s.values[series] = val
	}
	return s, nil
}

// cutLabel extracts one label's quoted value from a {k="v",...} block.
func cutLabel(labels, key string) (string, bool) {
	i := strings.Index(labels, key+`="`)
	if i < 0 {
		return "", false
	}
	rest := labels[i+len(key)+2:]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return "", false
	}
	return rest[:j], true
}

// quantile estimates the q-quantile (0 < q < 1) from cumulative
// buckets by linear interpolation inside the containing bucket — the
// standard histogram_quantile estimate. Returns 0 for an empty
// histogram; observations beyond the last finite bound clamp to it.
func (h *histData) quantile(q float64) float64 {
	if h == nil || h.total == 0 {
		return 0
	}
	rank := q * float64(h.total)
	prevBound, prevCount := 0.0, int64(0)
	for i, b := range h.bounds {
		c := h.counts[i]
		if float64(c) >= rank {
			width := float64(c - prevCount)
			if width == 0 {
				return b
			}
			return prevBound + (b-prevBound)*(rank-float64(prevCount))/width
		}
		prevBound, prevCount = b, c
	}
	if len(h.bounds) > 0 {
		return h.bounds[len(h.bounds)-1]
	}
	return 0
}

// histSummary is the percentile digest recorded per histogram.
type histSummary struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum_seconds"`
	P50   float64 `json:"p50_seconds"`
	P95   float64 `json:"p95_seconds"`
	P99   float64 `json:"p99_seconds"`
}

func summarize(h *histData) histSummary {
	if h == nil {
		return histSummary{}
	}
	return histSummary{
		Count: h.total,
		Sum:   h.sum,
		P50:   h.quantile(0.50),
		P95:   h.quantile(0.95),
		P99:   h.quantile(0.99),
	}
}

// shapeResult is the per-shape section of BENCH_load.json.
type shapeResult struct {
	Records           int     `json:"records"`
	Clients           int     `json:"clients"`
	SimSeconds        float64 `json:"sim_seconds"`
	SimPeakConcurrent int     `json:"sim_peak_concurrent_sessions"`

	ReplayWallSeconds float64 `json:"replay_wall_seconds"`
	RecordsPerSecond  float64 `json:"records_per_second"`

	TransactionsTotal    int64 `json:"transactions_total"`
	SessionBoundaries    int64 `json:"session_boundaries_total"`
	ClassificationRuns   int64 `json:"classification_runs_total"`
	ClassificationErrors int64 `json:"classification_errors_total"`
	SinkWriteFailures    int64 `json:"sink_write_failures_total"`
	IngestContention     int64 `json:"ingest_contention_total"`

	PeakActiveSessions float64 `json:"peak_active_sessions"`
	PeakGoroutines     float64 `json:"peak_goroutines"`
	PeakHeapInuse      float64 `json:"peak_heap_inuse_bytes"`
	GCPauseSeconds     float64 `json:"gc_pause_seconds_total"`
	GCRuns             int64   `json:"gc_runs_total"`
	HeapAllocBytes     int64   `json:"heap_alloc_bytes_total"`

	ShardClassify histSummary `json:"shard_classify_seconds"`
	Inference     histSummary `json:"inference_seconds"`

	Healthz   string `json:"healthz"`
	CleanExit bool   `json:"clean_exit"`

	Failures []string `json:"failures,omitempty"`
}

// benchReport is the whole BENCH_load.json document.
type benchReport struct {
	Date   string                  `json:"date"`
	Host   map[string]any          `json:"host"`
	Config map[string]any          `json:"config"`
	Shapes map[string]*shapeResult `json:"shapes"`
	// Fleet holds the -instances scale-out runs, keyed by instance
	// count ("1" is the single-member baseline).
	Fleet map[string]*fleetResult `json:"fleet,omitempty"`
}
