// Command qoeload is the replay load harness for cmd/qoeproxy: it
// generates tracegen-derived workloads (per-service-profile session
// mixes dealt to tens of thousands of simulated clients, steady or
// bursty arrivals), drives them through the daemon's real ingest and
// classify path, and measures what the service sustains — transaction
// throughput, classify-tick latency percentiles, ingest contention,
// allocation and GC pressure — writing a machine-readable
// BENCH_load.json.
//
// Usage:
//
//	qoeload [-clients 10000] [-pool 120] [-seed 7]
//	        [-shapes steady,bursty] [-speed 0] [-ramp 60s]
//	        [-transport replay|sockets|squid] [-slow-sink]
//	        [-classify-every 500ms] [-window 0] [-shards N]
//	        [-classify-workers N] [-classify-batch 256]
//	        [-replay-workers 4] [-socket-workers 32]
//	        [-instances N] [-settle 60s] [-out BENCH_load.json] [-bin path]
//
// Transport "replay" (the default) ships the workload to the daemon as
// a CSV and lets qoeproxy -replay deliver it through the record-replay
// seam at -speed times recorded time (0 = as fast as possible) —
// this is how five-digit client counts fit on one box. Transport
// "sockets" opens real TLS-shaped connections through the proxy
// listener against a synthetic origin, bounded by -socket-workers
// concurrent fetches; it exercises the full network path at smaller
// scale. Transport "squid" renders the workload as a Squid access log
// and has the daemon ingest it via -source=squid, measuring the
// log-parse-and-reorder path end to end. -slow-sink routes the
// daemon's -out CSV through a deliberately slow FIFO reader,
// exercising sink backpressure during load.
//
// -instances N adds a fleet section to the report: N daemons behind
// one consistent-hash ring (plus a 1-instance baseline), each fed the
// identical workload with its ring filter skipping non-owned clients,
// checked for exactly-once coverage and clean SIGTERM-with-snapshot;
// see fleet.go. -shapes "" skips the per-shape runs so a fleet smoke
// can run alone.
//
// The harness fails (exit 1) if the daemon drops records
// (transactions_total != records replayed), reports classification
// errors or sink write failures, serves an unhealthy /healthz, or
// exits uncleanly. The run still writes BENCH_load.json so a failing
// run can be diagnosed.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"droppackets/internal/capture"
	"droppackets/internal/core"
	"droppackets/internal/ml/forest"
	"droppackets/internal/qoe"
	"droppackets/internal/squidlog"
	"droppackets/internal/tlsproxy"
)

type loadOptions struct {
	clients int
	pool    int
	seed    int64
	shapes  string
	speed   float64
	ramp    time.Duration

	transport string
	slowSink  bool

	classifyEvery   time.Duration
	window          time.Duration
	shards          int
	classifyWorkers int
	classifyBatch   int
	replayWorkers   int
	socketWorkers   int

	instances int

	settle time.Duration
	out    string
	bin    string
}

func main() {
	var o loadOptions
	flag.IntVar(&o.clients, "clients", 10000, "simulated clients per workload shape")
	flag.IntVar(&o.pool, "pool", 120, "sessions generated per service profile for the replay pool")
	flag.Int64Var(&o.seed, "seed", 7, "workload generation seed")
	flag.StringVar(&o.shapes, "shapes", "steady,bursty", "comma-separated workload shapes to run (steady, bursty)")
	flag.Float64Var(&o.speed, "speed", 0, "replay time-compression factor (1 = recorded speed, 0 = as fast as possible)")
	flag.DurationVar(&o.ramp, "ramp", 60*time.Second, "simulated client-arrival spread")
	flag.StringVar(&o.transport, "transport", "replay", "how records reach the daemon: replay (record-replay seam), sockets (real connections), or squid (access-log ingest)")
	flag.BoolVar(&o.slowSink, "slow-sink", false, "route the daemon's -out CSV through a slow FIFO reader to exercise sink backpressure")
	flag.DurationVar(&o.classifyEvery, "classify-every", 500*time.Millisecond, "daemon classification interval")
	flag.DurationVar(&o.window, "window", 0, "daemon classification window (0 = whole current session)")
	flag.IntVar(&o.shards, "shards", 0, "daemon lock shards (0 = daemon default)")
	flag.IntVar(&o.classifyWorkers, "classify-workers", 0, "daemon classify workers (0 = daemon default)")
	flag.IntVar(&o.classifyBatch, "classify-batch", 256, "daemon batched-sweep rows per inference call (0 = row-at-a-time)")
	flag.IntVar(&o.replayWorkers, "replay-workers", 4, "daemon replay delivery goroutines (replay transport)")
	flag.IntVar(&o.socketWorkers, "socket-workers", 32, "concurrent fetches (sockets transport)")
	flag.IntVar(&o.instances, "instances", 0, "also bench a consistent-hash partitioned fleet of N daemons against the shared workload (0 = skip the fleet section)")
	flag.DurationVar(&o.settle, "settle", 60*time.Second, "how long to wait after replay for classification passes to accumulate")
	flag.StringVar(&o.out, "out", "BENCH_load.json", "write the load report here")
	flag.StringVar(&o.bin, "bin", "", "prebuilt qoeproxy binary (empty: go build one into a temp dir)")
	flag.Parse()

	if err := runLoad(o); err != nil {
		fmt.Fprintln(os.Stderr, "qoeload:", err)
		os.Exit(1)
	}
}

// runLoad executes every requested shape and writes the report,
// returning an error if any shape failed a correctness check.
func runLoad(o loadOptions) error {
	var shapes []string
	if o.shapes != "" {
		shapes = strings.Split(o.shapes, ",")
		for i := range shapes {
			shapes[i] = strings.TrimSpace(shapes[i])
		}
	}
	if o.instances > 0 && o.transport != "replay" {
		return fmt.Errorf("-instances requires the replay transport")
	}
	dir, err := os.MkdirTemp("", "qoeload")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	fmt.Fprintf(os.Stderr, "qoeload: building session pool (%d/profile, seed %d)\n", o.pool, o.seed)
	p, err := buildPool(o.seed, o.pool)
	if err != nil {
		return err
	}
	modelPath := filepath.Join(dir, "model.json")
	if err := trainModel(p, o.seed, modelPath); err != nil {
		return err
	}
	bin := o.bin
	if bin == "" {
		bin = filepath.Join(dir, "qoeproxy")
		fmt.Fprintf(os.Stderr, "qoeload: building %s\n", bin)
		cmd := exec.Command("go", "build", "-o", bin, "droppackets/cmd/qoeproxy")
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			return fmt.Errorf("building qoeproxy: %w", err)
		}
	}

	report := &benchReport{
		Date: time.Now().UTC().Format(time.RFC3339),
		Host: map[string]any{
			"go":          runtime.Version(),
			"os":          runtime.GOOS,
			"arch":        runtime.GOARCH,
			"cpus_online": runtime.NumCPU(),
		},
		Config: map[string]any{
			"clients":          o.clients,
			"pool":             o.pool,
			"seed":             o.seed,
			"speed":            o.speed,
			"ramp_seconds":     o.ramp.Seconds(),
			"transport":        o.transport,
			"slow_sink":        o.slowSink,
			"classify_every":   o.classifyEvery.String(),
			"window":           o.window.String(),
			"shards":           o.shards,
			"classify_workers": o.classifyWorkers,
			"classify_batch":   o.classifyBatch,
			"replay_workers":   o.replayWorkers,
			"socket_workers":   o.socketWorkers,
			"instances":        o.instances,
		},
		Shapes: map[string]*shapeResult{},
	}

	var failed []string
	for _, shape := range shapes {
		fmt.Fprintf(os.Stderr, "qoeload: generating %s workload (%d clients)\n", shape, o.clients)
		w, err := p.generate(genConfig{clients: o.clients, seed: o.seed, ramp: o.ramp.Seconds(), shape: shape})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "qoeload: %s: %d records, %.0fs simulated, peak %d concurrent sessions\n",
			shape, len(w.records), w.simSeconds, w.peakConcurrent)
		res, err := runShape(o, bin, modelPath, dir, w)
		if err != nil {
			return fmt.Errorf("shape %s: %w", shape, err)
		}
		report.Shapes[shape] = res
		for _, f := range res.Failures {
			failed = append(failed, shape+": "+f)
		}
	}

	// Fleet section: 1 instance as the scale-out baseline, then the
	// requested count — same workload, same ring math, so the two rows
	// are directly comparable.
	if o.instances > 0 {
		report.Fleet = map[string]*fleetResult{}
		counts := []int{1}
		if o.instances > 1 {
			counts = append(counts, o.instances)
		}
		w, err := p.generate(genConfig{clients: o.clients, seed: o.seed, ramp: o.ramp.Seconds(), shape: "steady"})
		if err != nil {
			return err
		}
		for _, n := range counts {
			fmt.Fprintf(os.Stderr, "qoeload: fleet bench: %d instance(s), %d records, %d clients\n",
				n, len(w.records), w.clients)
			fres, err := runFleet(o, bin, modelPath, dir, w, n)
			if err != nil {
				return fmt.Errorf("fleet %d: %w", n, err)
			}
			report.Fleet[fmt.Sprint(n)] = fres
			for _, f := range fres.Failures {
				failed = append(failed, fmt.Sprintf("fleet %d: %s", n, f))
			}
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(o.out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "qoeload: wrote %s\n", o.out)
	if len(failed) > 0 {
		return fmt.Errorf("checks failed:\n  %s", strings.Join(failed, "\n  "))
	}
	return nil
}

// trainModel trains a small estimator on the whole pool and saves it
// for the daemon.
func trainModel(p *pool, seed int64, path string) error {
	var training []core.TrainingSession
	for _, c := range p.corpora {
		for _, r := range c.Records {
			training = append(training, core.TrainingSession{TLS: r.Capture.TLS, QoE: r.QoE})
		}
	}
	est := core.NewEstimator(core.Config{Metric: qoe.MetricCombined, Forest: forest.Config{NumTrees: 8, Seed: seed}})
	if err := est.Train(training); err != nil {
		return fmt.Errorf("training model: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := est.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// daemonEvents carries what the stderr parser extracts from the
// daemon's JSON logs.
type daemonEvents struct {
	listenAddr  chan string // proxy listener address
	metricsAddr chan string
	replayDone  chan replayOutcome
	classErrors atomic.Int64 // "classification failed" log lines
}

type replayOutcome struct {
	records     int64
	wallSeconds float64
}

// watchStderr parses the daemon's JSON log lines, extracting the
// addresses and the replay-completion event. Lines are pre-filtered by
// substring so the 10k-client classification log volume doesn't cost a
// JSON decode each.
func watchStderr(r io.Reader, ev *daemonEvents) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 256*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.Contains(line, `"msg":"metrics listening"`):
			var e struct {
				Addr string `json:"addr"`
			}
			if json.Unmarshal([]byte(line), &e) == nil {
				select {
				case ev.metricsAddr <- e.Addr:
				default:
				}
			}
		case strings.Contains(line, `"msg":"listening"`):
			var e struct {
				Addr string `json:"addr"`
			}
			if json.Unmarshal([]byte(line), &e) == nil {
				select {
				case ev.listenAddr <- e.Addr:
				default:
				}
			}
		case strings.Contains(line, `"msg":"replay complete"`),
			strings.Contains(line, `"msg":"ingest complete"`):
			var e struct {
				Records     int64   `json:"records"`
				WallSeconds float64 `json:"wall_seconds"`
			}
			if json.Unmarshal([]byte(line), &e) == nil {
				select {
				case ev.replayDone <- replayOutcome{e.Records, e.WallSeconds}:
				default:
				}
			}
		case strings.Contains(line, `"msg":"classification failed"`):
			ev.classErrors.Add(1)
		}
	}
}

// slowFIFO creates a named pipe at path and drains it slowly (4KB per
// 10ms, ~400KB/s), so the daemon's sink writer sees sustained
// backpressure. The drain stops when the writer closes.
func slowFIFO(path string) error {
	if err := syscall.Mkfifo(path, 0o600); err != nil {
		return fmt.Errorf("mkfifo: %w", err)
	}
	go func() {
		f, err := os.OpenFile(path, os.O_RDONLY, 0)
		if err != nil {
			return
		}
		defer f.Close()
		buf := make([]byte, 4096)
		for {
			if _, err := f.Read(buf); err != nil {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	return nil
}

// runShape boots one daemon, pushes one workload through it, and
// collects the measurements and correctness checks.
func runShape(o loadOptions, bin, modelPath, dir string, w *workload) (*shapeResult, error) {
	res := &shapeResult{
		Records:           len(w.records),
		Clients:           w.clients,
		SimSeconds:        w.simSeconds,
		SimPeakConcurrent: w.peakConcurrent,
	}
	fail := func(format string, args ...any) {
		res.Failures = append(res.Failures, fmt.Sprintf(format, args...))
	}

	csvPath := filepath.Join(dir, w.shape+".workload.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		return nil, err
	}
	if err := tlsproxy.WriteWorkload(f, w.records); err != nil {
		f.Close()
		return nil, err
	}
	f.Close()

	outPath := filepath.Join(dir, w.shape+".out.csv")
	if o.slowSink {
		outPath = filepath.Join(dir, w.shape+".out.fifo")
		if err := slowFIFO(outPath); err != nil {
			return nil, err
		}
	}

	// The upstream is only dialed by the sockets transport; replay mode
	// never opens a backend connection.
	var origin *tlsproxy.Origin
	upstream := "127.0.0.1:1"
	if o.transport == "sockets" {
		ol, err := listenLoopback()
		if err != nil {
			return nil, err
		}
		origin = tlsproxy.NewOrigin(0)
		go origin.Serve(ol)
		defer origin.Close()
		upstream = ol.Addr().String()
	}

	args := []string{
		"-listen", "127.0.0.1:0",
		"-upstream", upstream,
		"-model", modelPath,
		"-metrics", "127.0.0.1:0",
		"-out", outPath,
		"-classify-every", o.classifyEvery.String(),
		"-window", o.window.String(),
		"-classify-batch", fmt.Sprint(o.classifyBatch),
	}
	if o.shards > 0 {
		args = append(args, "-shards", fmt.Sprint(o.shards))
	}
	if o.classifyWorkers > 0 {
		args = append(args, "-classify-workers", fmt.Sprint(o.classifyWorkers))
	}
	switch o.transport {
	case "replay":
		args = append(args,
			"-replay", csvPath,
			"-replay-speed", fmt.Sprint(o.speed),
			"-replay-workers", fmt.Sprint(o.replayWorkers))
	case "squid":
		// Render the workload as an end-time-ordered access log — the
		// order a real Squid writes — and let the daemon's tailer ingest
		// it as a bounded file.
		logPath := filepath.Join(dir, w.shape+".access.log")
		sorted := make([]tlsproxy.ReplayRecord, len(w.records))
		copy(sorted, w.records)
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].End < sorted[j].End })
		lf, err := os.Create(logPath)
		if err != nil {
			return nil, err
		}
		bw := bufio.NewWriterSize(lf, 1<<20)
		for _, r := range sorted {
			fmt.Fprintln(bw, squidlog.FormatEntry(r.Client, capture.TLSTransaction{
				SNI: r.SNI, Start: r.Start, End: r.End, UpBytes: r.UpBytes, DownBytes: r.DownBytes,
			}, 0))
		}
		if err := bw.Flush(); err != nil {
			lf.Close()
			return nil, err
		}
		if err := lf.Close(); err != nil {
			return nil, err
		}
		args = append(args,
			"-source", "squid",
			"-input", logPath,
			"-follow=false",
			"-ingest-epoch", "0")
	}
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	ev := &daemonEvents{
		listenAddr:  make(chan string, 1),
		metricsAddr: make(chan string, 1),
		replayDone:  make(chan replayOutcome, 1),
	}
	go watchStderr(stderr, ev)
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	defer cmd.Process.Kill()

	var metricsAddr string
	select {
	case metricsAddr = <-ev.metricsAddr:
	case <-time.After(30 * time.Second):
		return nil, fmt.Errorf("daemon never reported its metrics address")
	}
	base := "http://" + metricsAddr

	// Sockets transport drives the workload itself; replay mode waits
	// for the daemon's replayer.
	if o.transport == "sockets" {
		var listenAddr string
		select {
		case listenAddr = <-ev.listenAddr:
		case <-time.After(30 * time.Second):
			return nil, fmt.Errorf("daemon never reported its listen address")
		}
		go driveSockets(listenAddr, w, o, ev)
	}

	// Scrape loop: track peaks until the replay finishes, then let
	// classification passes settle.
	scrape := func() *scrapeData {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			return nil
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil
		}
		s, err := parseMetrics(string(body))
		if err != nil {
			return nil
		}
		res.PeakActiveSessions = max(res.PeakActiveSessions, s.value("qoeproxy_active_sessions"))
		res.PeakGoroutines = max(res.PeakGoroutines, s.value("qoeproxy_goroutines"))
		res.PeakHeapInuse = max(res.PeakHeapInuse, s.value("qoeproxy_heap_inuse_bytes"))
		return s
	}

	var outcome replayOutcome
	replayTimeout := time.After(10 * time.Minute)
waitReplay:
	for {
		select {
		case outcome = <-ev.replayDone:
			break waitReplay
		case <-replayTimeout:
			fail("replay did not complete within 10m")
			break waitReplay
		case <-time.After(200 * time.Millisecond):
			scrape()
		}
	}
	res.ReplayWallSeconds = outcome.wallSeconds
	if outcome.wallSeconds > 0 {
		res.RecordsPerSecond = float64(outcome.records) / outcome.wallSeconds
	}
	if outcome.records != int64(len(w.records)) {
		fail("replay delivered %d records, workload has %d", outcome.records, len(w.records))
	}

	// Settle: all records ingested and a few classification passes on
	// the fully-loaded state.
	deadline := time.Now().Add(o.settle)
	var last *scrapeData
	for {
		last = scrape()
		if last != nil &&
			last.value("qoeproxy_transactions_total") == float64(len(w.records)) &&
			last.value("qoeproxy_classification_runs_total") >= 3 {
			break
		}
		if time.Now().After(deadline) {
			fail("daemon did not settle within %s (transactions %.0f/%d, runs %.0f)",
				o.settle, last.value("qoeproxy_transactions_total"), len(w.records),
				last.value("qoeproxy_classification_runs_total"))
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	if last == nil {
		return nil, fmt.Errorf("metrics endpoint never answered")
	}

	res.TransactionsTotal = int64(last.value("qoeproxy_transactions_total"))
	res.SessionBoundaries = int64(last.value("qoeproxy_session_boundaries_total"))
	res.ClassificationRuns = int64(last.value("qoeproxy_classification_runs_total"))
	res.ClassificationErrors = int64(last.value("qoeproxy_classification_errors_total"))
	res.SinkWriteFailures = int64(last.value("qoeproxy_sink_write_failures_total"))
	res.IngestContention = int64(last.value("qoeproxy_ingest_contention_total"))
	res.GCPauseSeconds = last.value("qoeproxy_gc_pause_seconds_total")
	res.GCRuns = int64(last.value("qoeproxy_gc_runs_total"))
	res.HeapAllocBytes = int64(last.value("qoeproxy_heap_alloc_bytes_total"))
	res.ShardClassify = summarize(last.hists["qoeproxy_shard_classify_seconds"])
	res.Inference = summarize(last.hists["qoeproxy_inference_seconds"])

	if resp, err := http.Get(base + "/healthz"); err == nil {
		var h struct {
			Status string `json:"status"`
		}
		json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		res.Healthz = h.Status
	} else {
		res.Healthz = "unreachable"
	}

	// Shut the daemon down and let it flush.
	cmd.Process.Signal(syscall.SIGTERM)
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		res.CleanExit = err == nil
		if err != nil {
			fail("daemon exited with %v", err)
		}
	case <-time.After(60 * time.Second):
		fail("daemon did not exit within 60s of SIGTERM")
		cmd.Process.Kill()
		<-exited
	}

	if res.TransactionsTotal != int64(len(w.records)) {
		fail("dropped records: transactions_total %d, want %d", res.TransactionsTotal, len(w.records))
	}
	if res.ClassificationErrors != 0 || ev.classErrors.Load() != 0 {
		fail("classification errors: counter %d, log lines %d", res.ClassificationErrors, ev.classErrors.Load())
	}
	if res.SinkWriteFailures != 0 {
		fail("sink write failures: %d", res.SinkWriteFailures)
	}
	if res.Healthz != "ok" {
		fail("healthz = %q, want ok", res.Healthz)
	}
	if res.ClassificationRuns < 1 {
		fail("no classification pass completed")
	}
	return res, nil
}

// listenLoopback binds an ephemeral loopback listener.
func listenLoopback() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}

// driveSockets replays the workload as real proxied connections: each
// record becomes a dial + fetch of its DownBytes through the proxy,
// paced by RecordSource across -socket-workers lanes.
func driveSockets(proxyAddr string, w *workload, o loadOptions, ev *daemonEvents) {
	src := &tlsproxy.RecordSource{Records: w.records, Speed: o.speed, Workers: o.socketWorkers}
	start := time.Now()
	var delivered atomic.Int64
	src.Run(context.Background(), time.Now(), nil, func(r tlsproxy.Record) {
		c, err := tlsproxy.Dial(proxyAddr, r.SNI)
		if err != nil {
			return
		}
		if _, err := c.Fetch(r.DownBytes); err == nil {
			delivered.Add(1)
		}
		c.Close()
	})
	select {
	case ev.replayDone <- replayOutcome{delivered.Load(), time.Since(start).Seconds()}:
	default:
	}
}
