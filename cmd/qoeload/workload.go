package main

import (
	"fmt"
	"math/rand"
	"sort"

	"droppackets/internal/dataset"
	"droppackets/internal/has"
	"droppackets/internal/tlsproxy"
)

// This file turns the tracegen corpus into replayable load: a pool of
// realistic sessions per service profile, dealt out to N simulated
// clients whose arrival times follow a workload shape. The output is
// the CSV workload format of internal/tlsproxy (ReplayRecord), which
// cmd/qoeproxy replays straight into its ingest path.

// pool holds the per-profile session corpora every shape draws from.
type pool struct {
	corpora []*dataset.Corpus
}

// buildPool generates sessions sessions for each of the three service
// profiles, deterministically from seed.
func buildPool(seed int64, sessions int) (*pool, error) {
	var p pool
	for _, prof := range []*has.ServiceProfile{has.Svc1(), has.Svc2(), has.Svc3()} {
		c, err := dataset.Build(dataset.Config{Seed: seed, Sessions: sessions}, prof)
		if err != nil {
			return nil, fmt.Errorf("building %s pool: %w", prof.Name, err)
		}
		if len(c.Records) == 0 {
			return nil, fmt.Errorf("profile %s produced an empty pool", prof.Name)
		}
		p.corpora = append(p.corpora, c)
	}
	return &p, nil
}

// genConfig parameterizes one workload generation.
type genConfig struct {
	clients int
	seed    int64
	// ramp is the simulated arrival spread in seconds: client session
	// starts land inside [0, ramp).
	ramp  float64
	shape string // "steady" or "bursty"
}

// workload is one generated shape, ready to replay.
type workload struct {
	shape   string
	records []tlsproxy.ReplayRecord
	clients int
	// simSeconds is the simulated span (latest End).
	simSeconds float64
	// peakConcurrent is the maximum number of sessions simultaneously
	// open in simulated time — the honest "concurrent clients" figure.
	peakConcurrent int
}

// clientHostPort derives a unique replay client address from an index.
func clientHostPort(i int) string {
	return fmt.Sprintf("10.%d.%d.%d:40000", (i>>16)&255, (i>>8)&255, i&255)
}

// arrivals produces one session-start offset per client according to
// the shape, deterministically from the rng.
func arrivals(cfg genConfig, rng *rand.Rand) ([]float64, error) {
	at := make([]float64, cfg.clients)
	switch cfg.shape {
	case "steady":
		// Even spread with a little jitter: a stationary open rate.
		step := cfg.ramp / float64(cfg.clients)
		for i := range at {
			at[i] = step*float64(i) + rng.Float64()*step
		}
	case "bursty":
		// Clients arrive in tight waves: flash-crowd opens followed by
		// correlated closes. One burst per ~500 clients, at least two.
		bursts := cfg.clients / 500
		if bursts < 2 {
			bursts = 2
		}
		centers := make([]float64, bursts)
		for i := range centers {
			centers[i] = rng.Float64() * cfg.ramp
		}
		spread := cfg.ramp / float64(bursts*20)
		for i := range at {
			c := centers[rng.Intn(bursts)]
			d := c + rng.NormFloat64()*spread
			if d < 0 {
				d = 0
			}
			at[i] = d
		}
	default:
		return nil, fmt.Errorf("unknown workload shape %q (want steady or bursty)", cfg.shape)
	}
	return at, nil
}

// generate deals each client a session from the pool (profiles
// round-robin across clients) shifted to its arrival offset. Records
// are emitted client by client, so each client's connections stay in
// start order as RecordSource requires.
func (p *pool) generate(cfg genConfig) (*workload, error) {
	rng := rand.New(rand.NewSource(cfg.seed))
	at, err := arrivals(cfg, rng)
	if err != nil {
		return nil, err
	}
	w := &workload{shape: cfg.shape, clients: cfg.clients}
	type span struct{ start, end float64 }
	spans := make([]span, 0, cfg.clients)
	for i := 0; i < cfg.clients; i++ {
		corpus := p.corpora[i%len(p.corpora)]
		rec := corpus.Records[rng.Intn(len(corpus.Records))]
		client := clientHostPort(i)
		sessStart, sessEnd := at[i], at[i]
		for _, txn := range rec.Capture.TLS {
			start := at[i] + txn.Start
			end := at[i] + txn.End
			w.records = append(w.records, tlsproxy.ReplayRecord{
				Client:    client,
				SNI:       txn.SNI,
				Start:     start,
				End:       end,
				UpBytes:   txn.UpBytes,
				DownBytes: txn.DownBytes,
			})
			if end > sessEnd {
				sessEnd = end
			}
			if end > w.simSeconds {
				w.simSeconds = end
			}
		}
		spans = append(spans, span{sessStart, sessEnd})
	}
	// Peak session concurrency: sweep open/close events in sim time.
	type event struct {
		at    float64
		delta int
	}
	events := make([]event, 0, 2*len(spans))
	for _, sp := range spans {
		events = append(events, event{sp.start, +1}, event{sp.end, -1})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return events[i].delta < events[j].delta // close before open on ties
	})
	cur := 0
	for _, e := range events {
		cur += e.delta
		if cur > w.peakConcurrent {
			w.peakConcurrent = cur
		}
	}
	return w, nil
}
