// Back-to-back session identification (§4.2, Table 5): a user watches
// six videos in a row from the same service. TLS connections from each
// video linger past the player closing, so the transaction stream
// overlaps across sessions and timeout-based splitting cannot work.
// The heuristic finds the boundaries from transaction-arrival bursts
// and server-set changes.
//
// Run with: go run ./examples/backtoback
package main

import (
	"fmt"
	"log"

	"droppackets/internal/capture"
	"droppackets/internal/dataset"
	"droppackets/internal/has"
	"droppackets/internal/sessionid"
)

func main() {
	const videos = 6
	profile := has.Svc1()
	cfg := dataset.Config{Seed: 21, Sessions: videos}

	var lists [][]capture.TLSTransaction
	var durations []float64
	for i := 0; i < videos; i++ {
		rec, err := dataset.GenerateSession(cfg, profile, i)
		if err != nil {
			log.Fatal(err)
		}
		lists = append(lists, rec.Capture.TLS)
		durations = append(durations, rec.DurationSec)
	}
	stream := sessionid.Concat(lists, durations)
	pred := sessionid.Detect(stream, sessionid.PaperParams)

	fmt.Printf("%d videos back-to-back -> %d TLS transactions\n\n", videos, len(stream))
	fmt.Println("      time          session  transaction                 detected")
	for i, t := range stream {
		truth := " "
		if t.First {
			truth = "<-- true session start"
		}
		mark := ""
		if pred[i] {
			mark = "[NEW SESSION]"
		}
		fmt.Printf("%8.1fs..%8.1fs   #%d     %-26s %-13s %s\n",
			t.Start, t.End, t.SessionIdx, t.SNI, mark, truth)
	}

	correct, total := sessionid.SessionsRecovered(stream, sessionid.PaperParams)
	fmt.Printf("\nsession starts recovered: %d/%d\n", correct, total)
	conf := sessionid.Evaluate(stream, sessionid.PaperParams)
	fmt.Println(conf.Format(sessionid.ClassNames))
}
