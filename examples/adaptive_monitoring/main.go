// Adaptive monitoring: the deployment story that motivates the paper
// (§1). An ISP watches every cell/location with cheap TLS-transaction
// inference; when low-QoE sessions concentrate in a location, the
// monitor escalates it to fine-grained (packet-level) collection for
// diagnosis. Here, three locations have healthy LTE-like mixes and one
// is a congested cell.
//
// Run with: go run ./examples/adaptive_monitoring
package main

import (
	"fmt"
	"log"

	"droppackets/internal/capture"
	"droppackets/internal/core"
	"droppackets/internal/dataset"
	"droppackets/internal/has"
	"droppackets/internal/ml/forest"
	"droppackets/internal/netem"
	"droppackets/internal/qoe"
	"droppackets/internal/stats"
	"droppackets/internal/trace"
)

func main() {
	profile := has.Svc1()

	// Train the estimator on the usual mixed corpus.
	corpus, err := dataset.Build(dataset.Config{Seed: 3, Sessions: 500}, profile)
	if err != nil {
		log.Fatal(err)
	}
	var training []core.TrainingSession
	for _, r := range corpus.Records {
		training = append(training, core.TrainingSession{TLS: r.Capture.TLS, QoE: r.QoE})
	}
	est := core.NewEstimator(core.Config{
		Metric: qoe.MetricCombined,
		Forest: forest.Config{NumTrees: 80, MinLeaf: 2, Seed: 3},
	})
	if err := est.Train(training); err != nil {
		log.Fatal(err)
	}
	monitor, err := core.NewAdaptiveMonitor(est, core.MonitorConfig{
		Window:               40,
		MinSessions:          15,
		LowFractionThreshold: 0.35,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Four locations: three healthy, one congested (3G-like with deep
	// fades). Stream 60 sessions per location through the monitor.
	locations := []struct {
		name  string
		class trace.Class
	}{
		{"cell-north", trace.LTE},
		{"cell-east", trace.Broadband},
		{"cell-south", trace.LTE},
		{"cell-west-congested", trace.ThreeG},
	}
	for round := 0; round < 60; round++ {
		for li, loc := range locations {
			seed := int64(1000*li + round)
			rng := stats.SplitRNG(77, seed)
			dur := trace.SampleDuration(rng, trace.PaperDurationMix)
			tr := trace.Generate(trace.GenConfig{Seed: 77 + seed}, loc.class, dur, round)
			link := netem.NewLink(tr, rng)
			res, err := has.Simulate(profile, link, dur, rng)
			if err != nil {
				log.Fatal(err)
			}
			sc := capture.Build(profile.Name, round, profile, res, rng)
			if _, _, err := monitor.Observe(loc.name, sc.TLS); err != nil {
				log.Fatal(err)
			}
		}
	}

	fmt.Println("location                low-QoE fraction   escalated to packet collection")
	escalated := map[string]bool{}
	for _, name := range monitor.Escalated() {
		escalated[name] = true
	}
	for _, loc := range locations {
		fmt.Printf("%-22s  %13.0f%%   %v\n", loc.name, monitor.LowFraction(loc.name)*100, escalated[loc.name])
	}
	fmt.Println("\nonly escalated locations pay the ~10^4x packet-collection overhead (Table 4)")
}
