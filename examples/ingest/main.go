// Ingest formats: one workload, every telemetry source. This example
// generates a small synthetic traffic corpus and renders it in each
// format the qoeproxy daemon ingests — a replay CSV, a Squid access
// log, a transaction pcap and a NetFlow-style flow-record file — plus
// a trained model, then prints the exact daemon invocation for every
// -source mode. It finishes by replaying one rendering in-process
// through the ingest API to show the TransactionSource contract.
//
// All four files describe the same transactions on the same clock, so
// the daemon classifies identically whichever one it is fed (the
// cross-source equivalence test in cmd/qoeproxy pins this).
//
// Run with: go run ./examples/ingest [-dir ingest-demo]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"droppackets/internal/capture"
	"droppackets/internal/core"
	"droppackets/internal/dataset"
	"droppackets/internal/has"
	"droppackets/internal/ingest"
	"droppackets/internal/ml/forest"
	"droppackets/internal/netflow"
	"droppackets/internal/pcap"
	"droppackets/internal/qoe"
	"droppackets/internal/squidlog"
	"droppackets/internal/tlsproxy"
)

func main() {
	dir := flag.String("dir", "ingest-demo", "write the workload renderings here")
	sessions := flag.Int("sessions", 12, "video sessions in the demo corpus")
	seed := flag.Int64("seed", 11, "corpus generation seed")
	flag.Parse()
	if err := run(*dir, *sessions, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(dir string, sessions int, seed int64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	// A small corpus of synthetic HAS sessions, dealt across a handful
	// of clients. Timestamps are snapped to the millisecond grid a Squid
	// log carries, so every rendering decodes to identical offsets.
	corpus, err := dataset.Build(dataset.Config{Seed: seed, Sessions: sessions}, has.Svc1())
	if err != nil {
		return err
	}
	var recs []tlsproxy.ReplayRecord
	for i, r := range corpus.Records {
		client := fmt.Sprintf("10.20.0.%d", i%4+1)
		for _, txn := range r.Capture.TLS {
			endMs := math.Round(txn.End * 1000)
			durMs := math.Round((txn.End - txn.Start) * 1000)
			durMs = math.Max(0, math.Min(durMs, endMs))
			end := endMs / 1000
			recs = append(recs, tlsproxy.ReplayRecord{
				Client: client, SNI: txn.SNI,
				Start: end - durMs/1000, End: end,
				UpBytes: txn.UpBytes, DownBytes: txn.DownBytes,
			})
		}
	}
	// End-time order: the order a proxy logs in, and the one the pcap
	// and squid readers reproduce.
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].End != recs[j].End {
			return recs[i].End < recs[j].End
		}
		return recs[i].Start < recs[j].Start
	})

	// Rendering 1: replay CSV (the tlsproxy workload format).
	csvPath := filepath.Join(dir, "workload.csv")
	if err := writeFile(csvPath, func(f *os.File) error {
		return tlsproxy.WriteWorkload(f, recs)
	}); err != nil {
		return err
	}

	// Rendering 2: Squid access log, epoch-0 timestamps.
	logPath := filepath.Join(dir, "access.log")
	if err := writeFile(logPath, func(f *os.File) error {
		for _, r := range recs {
			line := squidlog.FormatEntry(r.Client, capture.TLSTransaction{
				SNI: r.SNI, Start: r.Start, End: r.End,
				UpBytes: r.UpBytes, DownBytes: r.DownBytes,
			}, 0)
			if _, err := fmt.Fprintln(f, line); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	// Rendering 3: transaction pcap (one synthetic TCP flow per record,
	// ClientHello carrying the SNI, byte totals as packet lengths).
	pcapPath := filepath.Join(dir, "trace.pcap")
	if err := writeFile(pcapPath, func(f *os.File) error {
		return pcap.WriteTransactions(f, recs)
	}); err != nil {
		return err
	}

	// Rendering 4: flow-record file, with a few unresolved (empty-host)
	// flows like a real collector export after imperfect DNS joining.
	flowPath := filepath.Join(dir, "flows.csv")
	var flows []netflow.ClientFlow
	for i, r := range recs {
		host := r.SNI
		if i%50 == 17 {
			host = "" // DNS visibility missed this server
		}
		flows = append(flows, netflow.ClientFlow{Client: r.Client, Flow: netflow.Record{
			Host: host, Start: r.Start, End: r.End, UpBytes: r.UpBytes, DownBytes: r.DownBytes,
		}})
	}
	if err := writeFile(flowPath, func(f *os.File) error {
		return netflow.WriteFlows(f, flows)
	}); err != nil {
		return err
	}

	// A model so the printed commands classify, not just ingest.
	modelPath := filepath.Join(dir, "model.json")
	var training []core.TrainingSession
	for _, r := range corpus.Records {
		training = append(training, core.TrainingSession{TLS: r.Capture.TLS, QoE: r.QoE})
	}
	est := core.NewEstimator(core.Config{Metric: qoe.MetricCombined, Forest: forest.Config{NumTrees: 8, Seed: seed}})
	if err := est.Train(training); err != nil {
		return err
	}
	if err := writeFile(modelPath, func(f *os.File) error { return est.Save(f) }); err != nil {
		return err
	}

	fmt.Printf("wrote %d transactions in four formats under %s/\n\n", len(recs), dir)
	common := fmt.Sprintf("-model %s -metrics 127.0.0.1:9090 -out %s", modelPath, filepath.Join(dir, "out.csv"))
	fmt.Println("run the daemon against any rendering:")
	fmt.Printf("  replay CSV:  go run ./cmd/qoeproxy -source replay -input %s -ingest-workers 4 %s\n", csvPath, common)
	fmt.Printf("  Squid log:   go run ./cmd/qoeproxy -source squid -input %s -follow=false -ingest-epoch 0 %s\n", logPath, common)
	fmt.Printf("  pcap trace:  go run ./cmd/qoeproxy -source pcap -input %s -ingest-epoch 0 %s\n", pcapPath, common)
	fmt.Printf("  flow file:   go run ./cmd/qoeproxy -source netflow -input %s %s\n", flowPath, common)
	fmt.Printf("  live proxy:  go run ./cmd/qoeproxy -listen :8443 -upstream <origin:port> %s\n\n", common)

	// The same files are one function call away in-process: every
	// format implements ingest.TransactionSource.
	src, err := ingest.NewPcapSource(pcapPath, time.Unix(0, 0), 0, 0, 1)
	if err != nil {
		return err
	}
	var n int
	err = src.Run(context.Background(), ingest.Handler{
		Transaction: func(tlsproxy.Record) { n++ },
	})
	if err != nil {
		return err
	}
	st := src.Stats()
	fmt.Printf("in-process check: %s source delivered %d transactions from %d clients\n",
		src.Name(), n, st.Clients)
	return nil
}

// writeFile creates path, hands it to fill, and closes it, failing on
// either error.
func writeFile(path string, fill func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
