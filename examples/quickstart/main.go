// Quickstart: train a QoE estimator on a simulated labeled corpus and
// classify held-out sessions from their TLS transactions alone.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"droppackets/internal/core"
	"droppackets/internal/dataset"
	"droppackets/internal/has"
	"droppackets/internal/ml/forest"
	"droppackets/internal/qoe"
)

func main() {
	// 1. Generate a labeled corpus for the Svc1 profile: every session
	// is streamed through the HAS simulator under a random network
	// trace, producing TLS transactions (the model input) and
	// player-side ground truth (the label).
	const trainSessions = 500
	corpus, err := dataset.Build(dataset.Config{Seed: 1, Sessions: trainSessions + 20}, has.Svc1())
	if err != nil {
		log.Fatal(err)
	}
	train, holdout := corpus.Records[:trainSessions], corpus.Records[trainSessions:]

	// 2. Train the combined-QoE estimator on the 38 TLS features.
	var sessions []core.TrainingSession
	for _, r := range train {
		sessions = append(sessions, core.TrainingSession{TLS: r.Capture.TLS, QoE: r.QoE})
	}
	est := core.NewEstimator(core.Config{
		Metric: qoe.MetricCombined,
		Forest: forest.Config{NumTrees: 100, MinLeaf: 2, Seed: 1},
	})
	if err := est.Train(sessions); err != nil {
		log.Fatal(err)
	}

	// 3. Classify the held-out sessions and compare with ground truth.
	names := core.ClassNames(qoe.MetricCombined)
	correct := 0
	fmt.Println("session  predicted  actual   link-kbps  duration")
	for _, r := range holdout {
		class, err := est.Classify(r.Capture.TLS)
		if err != nil {
			log.Fatal(err)
		}
		actual := r.QoE.Label(qoe.MetricCombined)
		mark := " "
		if class == actual {
			correct++
			mark = "*"
		}
		fmt.Printf("%7d  %-9s  %-6s %s %8.0f  %6.0fs\n",
			r.Capture.ID, names[class], names[actual], mark, r.AvgLinkKbps, r.DurationSec)
	}
	fmt.Printf("\n%d/%d held-out sessions classified correctly\n", correct, len(holdout))

	// 4. The most informative features, as in the paper's Figure 6.
	top, err := est.Importances(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop features:")
	for _, imp := range top {
		fmt.Printf("  %-16s %.3f\n", imp.Feature, imp.Importance)
	}
}
