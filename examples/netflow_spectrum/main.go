// NetFlow spectrum: the paper's future-work question (§5) — how does
// flow-level monitoring compare to TLS transactions? This example shows
// one session through both lenses (flow records slice long connections
// at the active timeout but lose DNS-unresolved traffic), then trains a
// classifier on each view and compares.
//
// Run with: go run ./examples/netflow_spectrum
package main

import (
	"fmt"
	"log"

	"droppackets/internal/dataset"
	"droppackets/internal/features"
	"droppackets/internal/has"
	"droppackets/internal/ml"
	"droppackets/internal/ml/eval"
	"droppackets/internal/ml/forest"
	"droppackets/internal/netflow"
	"droppackets/internal/qoe"
	"droppackets/internal/stats"
)

func main() {
	corpus, err := dataset.Build(dataset.Config{Seed: 13, Sessions: 400}, has.Svc1())
	if err != nil {
		log.Fatal(err)
	}

	// One session, two lenses.
	rec := corpus.Records[0]
	fmt.Printf("session 0 (%.0fs, combined QoE %s)\n\n", rec.DurationSec, rec.QoE.Combined)
	fmt.Println("TLS transactions (the proxy view):")
	for _, t := range rec.Capture.TLS {
		fmt.Printf("  %-26s %7.1fs..%7.1fs  down=%9d\n", t.SNI, t.Start, t.End, t.DownBytes)
	}
	flows, err := netflow.FromCapture(rec.Capture, netflow.Config{ActiveTimeoutSec: 60}, stats.NewRNG(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nNetFlow records (60s active timeout; blank host = DNS miss):")
	for _, f := range flows {
		fmt.Printf("  %-26s %7.1fs..%7.1fs  down=%9d\n", f.Host, f.Start, f.End, f.DownBytes)
	}

	// Train on each view and compare under 5-fold CV.
	fmt.Println("\ncombined-QoE classification, 5-fold CV:")
	evaluate := func(name string, x [][]float64) {
		y := make([]int, len(corpus.Records))
		for i, r := range corpus.Records {
			y[i] = r.QoE.Label(qoe.MetricCombined)
		}
		ds, err := ml.NewDataset(x, y, qoe.NumCategories, nil)
		if err != nil {
			log.Fatal(err)
		}
		res, err := eval.CrossValidate(func() ml.Classifier {
			return forest.New(forest.Config{NumTrees: 50, MinLeaf: 2, Seed: 13})
		}, ds, 5, 13)
		if err != nil {
			log.Fatal(err)
		}
		m := res.Metrics()
		fmt.Printf("  %-18s accuracy=%.0f%% low-QoE recall=%.0f%% macro-F1=%.2f\n",
			name, m.Accuracy*100, m.Recall*100, res.Confusion.MacroF1())
	}

	tlsX := make([][]float64, len(corpus.Records))
	for i, r := range corpus.Records {
		tlsX[i] = r.TLSFeatures
	}
	evaluate("tls-transactions", tlsX)

	for _, timeout := range []float64{60, 10} {
		x := make([][]float64, len(corpus.Records))
		for i, r := range corpus.Records {
			fl, err := netflow.FromCapture(r.Capture, netflow.Config{ActiveTimeoutSec: timeout}, stats.SplitRNG(99, int64(i)))
			if err != nil {
				log.Fatal(err)
			}
			x[i] = features.FromTLS(netflow.VideoTransactions(fl))
		}
		evaluate(fmt.Sprintf("netflow-%.0fs", timeout), x)
	}
	fmt.Println("\nflow records carry no SNI: video identification needs DNS augmentation,")
	fmt.Println("and unresolved flows are lost — the trade-off §2.2 describes.")
}
