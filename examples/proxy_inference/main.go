// Proxy inference: the paper's collection path over real sockets. A
// synthetic CDN origin, the SNI-sniffing transparent proxy and a
// segment-fetching video client all run in this process on localhost;
// the proxy's per-connection transaction records — start/end, byte
// counts, SNI, nothing else — feed a trained estimator that grades the
// session's QoE.
//
// Run with: go run ./examples/proxy_inference
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"droppackets/internal/core"
	"droppackets/internal/dataset"
	"droppackets/internal/has"
	"droppackets/internal/ml/forest"
	"droppackets/internal/qoe"
	"droppackets/internal/tlsproxy"
)

func main() {
	// Origin: a CDN edge paced at 1.5 MB/s (a mid-quality link).
	origin := tlsproxy.NewOrigin(1_500_000)
	ol := listen()
	go origin.Serve(ol)
	defer origin.Close()

	// Transparent proxy: resolves every SNI to the origin and reports
	// transaction records.
	var mu sync.Mutex
	var records []tlsproxy.Record
	proxy, err := tlsproxy.New(tlsproxy.Config{
		Resolver: tlsproxy.StaticResolver(ol.Addr().String()),
		OnTransaction: func(r tlsproxy.Record) {
			mu.Lock()
			records = append(records, r)
			mu.Unlock()
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	pl := listen()
	go proxy.Serve(pl)
	defer proxy.Close()

	// A miniature video session through the proxy: fetch a manifest
	// from the API host, then segments from two CDN hosts, adapting
	// segment size to measured throughput like a (very small) player.
	epoch := time.Now()
	fmt.Println("streaming a 12-segment session through the proxy...")
	api := dial(pl, "api.svc1.example")
	fetch(api, 60_000) // manifest
	api.Close()

	ladder := []int64{400_000, 900_000, 1_800_000} // bytes per 5s segment
	level := 0
	hosts := []string{"cdn-03.svc1.example", "cdn-07.svc1.example"}
	conns := map[string]*tlsproxy.Client{}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for seg := 0; seg < 12; seg++ {
		host := hosts[seg/8%len(hosts)]
		c := conns[host]
		if c == nil {
			c = dial(pl, host)
			conns[host] = c
		}
		elapsed, err := c.Fetch(ladder[level])
		if err != nil {
			log.Fatal(err)
		}
		tput := float64(ladder[level]) / elapsed.Seconds() // bytes/s
		// Primitive ABR: move toward the highest level sustainable at
		// 80% of measured throughput.
		want := 0
		for i, b := range ladder {
			if float64(b)/5 <= 0.8*tput {
				want = i
			}
		}
		if want > level {
			level++
		} else if want < level {
			level--
		}
		fmt.Printf("  segment %2d from %-22s level=%d tput=%.0f kB/s\n", seg, host, level, tput/1000)
	}
	for h, c := range conns {
		c.Close()
		delete(conns, h)
	}
	// Give the proxy a moment to flush the final transaction records.
	time.Sleep(300 * time.Millisecond)

	mu.Lock()
	txns := tlsproxy.ToCaptureTransactions(records, epoch)
	mu.Unlock()
	fmt.Printf("\nproxy observed %d TLS transactions:\n", len(txns))
	for _, t := range txns {
		fmt.Printf("  %-24s %6.2fs..%6.2fs  up=%7d  down=%9d\n", t.SNI, t.Start, t.End, t.UpBytes, t.DownBytes)
	}

	// Train the estimator on simulated Svc1 sessions and classify the
	// live capture.
	fmt.Println("\ntraining estimator on simulated corpus...")
	corpus, err := dataset.Build(dataset.Config{Seed: 11, Sessions: 400}, has.Svc1())
	if err != nil {
		log.Fatal(err)
	}
	var training []core.TrainingSession
	for _, r := range corpus.Records {
		training = append(training, core.TrainingSession{TLS: r.Capture.TLS, QoE: r.QoE})
	}
	est := core.NewEstimator(core.Config{
		Metric: qoe.MetricCombined,
		Forest: forest.Config{NumTrees: 60, MinLeaf: 2, Seed: 11},
	})
	if err := est.Train(training); err != nil {
		log.Fatal(err)
	}
	probs, err := est.ClassifyProba(txns)
	if err != nil {
		log.Fatal(err)
	}
	names := core.ClassNames(qoe.MetricCombined)
	fmt.Print("\nestimated combined QoE: ")
	best := 0
	for i, p := range probs {
		if p > probs[best] {
			best = i
		}
	}
	fmt.Printf("%s (", names[best])
	for i, p := range probs {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%s=%.2f", names[i], p)
	}
	fmt.Println(")")
}

func listen() net.Listener {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	return l
}

func dial(l net.Listener, sni string) *tlsproxy.Client {
	c, err := tlsproxy.Dial(l.Addr().String(), sni)
	if err != nil {
		log.Fatal(err)
	}
	return c
}

func fetch(c *tlsproxy.Client, size int64) {
	if _, err := c.Fetch(size); err != nil {
		log.Fatal(err)
	}
}
