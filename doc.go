// Package droppackets reproduces "Drop the Packets: Using
// Coarse-grained Data to detect Video Performance Issues" (Mangla,
// Halepovic, Zegura, Ammar — CoNEXT 2020): per-session video QoE
// estimation from TLS-transaction logs collected by a transparent
// proxy, evaluated against a packet-trace baseline, plus the paper's
// back-to-back session-identification heuristic.
//
// The public surface lives under internal/ packages by design — this
// module is a research artifact whose stable entry points are the
// commands (cmd/qoebench, cmd/qoeinfer, cmd/sessionize, cmd/tracegen)
// and the runnable examples (examples/...). The benchmark harness in
// bench_test.go regenerates every table and figure of the paper's
// evaluation; see DESIGN.md for the experiment index and EXPERIMENTS.md
// for measured-vs-paper results.
package droppackets
