module droppackets

go 1.22
