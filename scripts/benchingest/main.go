// Command benchingest regenerates BENCH_ingest.json, the performance
// artifact for the zero-alloc batched ingest path. It runs the squid
// parser micro-benchmarks (string reference vs in-place byte parser)
// and the end-to-end SquidSource benchmark across the (ParseWorkers,
// Batch) grid, then records per-op numbers plus the derived parser
// speedup. The run fails if the byte parser allocates or its speedup
// over the string parser drops below 2x — the artifact's headline
// claims must hold on the machine that wrote it. Run from the repo
// root:
//
//	go run ./scripts/benchingest
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// result holds one benchmark's parsed metrics, keyed by unit
// ("ns/op", "allocs/op", "records/s", ...).
type result map[string]float64

// parseBench extracts benchmark result lines from go test -bench
// output. Each line is "BenchmarkName-P <iters> <value> <unit> ...";
// sub-benchmark names keep their slash but drop the -P suffix.
func parseBench(out string) map[string]result {
	results := map[string]result{}
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		r := result{}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r[fields[i+1]] = v
		}
		// -count reruns keep the fastest pass per benchmark.
		if prev, ok := results[name]; !ok || r["ns/op"] < prev["ns/op"] {
			results[name] = r
		}
	}
	return results
}

func run(pattern string, count int, pkgs ...string) (map[string]result, error) {
	args := append([]string{"test", "-run", "^$",
		"-bench", pattern, "-benchmem", "-count", strconv.Itoa(count)}, pkgs...)
	cmd := exec.Command("go", args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return parseBench(string(out)), nil
}

func main() {
	fmt.Println("running parser benchmarks (best of 3)...")
	parse, err := run("BenchmarkSquidParse", 3, "./internal/squidlog")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("running end-to-end ingest benchmarks...")
	e2e, err := run("BenchmarkIngestEndToEnd", 1, "./internal/ingest")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	line, bytes := parse["BenchmarkSquidParse/line"], parse["BenchmarkSquidParse/bytes"]
	if line == nil || bytes == nil {
		fmt.Fprintln(os.Stderr, "parser benchmarks missing from output")
		os.Exit(1)
	}
	speedup := line["ns/op"] / bytes["ns/op"]
	if bytes["allocs/op"] != 0 {
		fmt.Fprintf(os.Stderr, "ParseLineBytes allocates (%v allocs/op); the zero-alloc claim is broken\n", bytes["allocs/op"])
		os.Exit(1)
	}
	if speedup < 2 {
		fmt.Fprintf(os.Stderr, "byte parser speedup %.2fx < 2x acceptance floor\n", speedup)
		os.Exit(1)
	}

	doc := map[string]any{
		"description": "Squid ingest benchmarks for the zero-alloc batched pipeline: in-place byte parsing (squidlog.ParseLineBytes), interned names, typed reorder heap, shard-batched delivery. Regenerate with: go run ./scripts/benchingest",
		"date":        time.Now().UTC().Format(time.RFC3339),
		"host": map[string]any{
			"os": runtime.GOOS, "arch": runtime.GOARCH,
			"cpus_online": runtime.NumCPU(), "go": runtime.Version(),
		},
		"parser": map[string]any{
			"BenchmarkSquidParse/line":  line,
			"BenchmarkSquidParse/bytes": bytes,
			"speedup":                   speedup,
			"note":                      "line is the retained string-based reference parser; bytes is the hot path every source now uses",
		},
		"end_to_end": e2e,
		"acceptance": map[string]any{
			"byte_parser_allocs_per_line": bytes["allocs/op"],
			"byte_parser_speedup_floor":   2.0,
			"note":                        "end-to-end allocs/op are per full 20k-line file replay (intern misses, heap growth), not per line; parse workers only pay off with >1 CPU online",
		},
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile("BENCH_ingest.json", append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("BENCH_ingest.json written: parser speedup %.2fx, %v allocs/line\n", speedup, bytes["allocs/op"])
}
