#!/bin/sh
# Repo health gate: formatting, vet, the full test suite, and the race
# detector on the packages that train, evaluate or serve concurrently.
# Run from anywhere inside the repo; exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l . 2>/dev/null)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== doc lint (operator-facing packages) =="
go run ./scripts/doclint internal/sessionid internal/tlsproxy internal/squidlog internal/features internal/core internal/faultinject internal/ml/compiled internal/ingest internal/netflow internal/pcap internal/intern internal/bytesconv internal/cluster

echo "== go test =="
go test ./...

echo "== go test -race (concurrent packages, incl. faultinject chaos tests and qoeproxy shard invariance) =="
# -timeout 20m: the experiments paper-shape suite takes ~10 wall-clock
# minutes under the race detector on a 1-core host, right at go test's
# default timeout.
go test -race -timeout 20m ./internal/ml/... ./internal/core ./internal/dataset ./internal/tlsproxy ./internal/metrics ./internal/experiments ./internal/features ./internal/faultinject ./internal/intern ./internal/ingest ./internal/cluster ./cmd/qoeproxy

echo "== feature benchmarks (smoke) =="
go test -run '^$' -bench Feature -benchtime 1x .

echo "== serving benchmarks (smoke: compiled scorers incl. batched sweep, sharded ingest) =="
go test -run '^$' -bench . -benchtime 1x ./internal/ml/compiled
go test -run '^$' -bench ConcurrentIngest -benchtime 100x ./cmd/qoeproxy

echo "== ingest benchmarks (smoke) + zero-alloc parser gate =="
go test -run '^$' -bench IngestEndToEnd -benchtime 1x ./internal/ingest
# The byte parser is the per-line hot path; any allocation is a
# regression. BENCH_ingest.json proper comes from scripts/benchingest.
parse_out=$(go test -run '^$' -bench 'SquidParse/bytes' -benchmem ./internal/squidlog)
echo "$parse_out"
if ! echo "$parse_out" | grep -q "	       0 allocs/op"; then
	echo "ParseLineBytes allocates; the zero-alloc ingest gate failed"
	exit 1
fi

echo "== qoeproxy smoke (/metrics, /healthz, squid-log tail, model hot reload, SIGTERM drain) =="
go run ./scripts/smoke

echo "== qoeload soak (replay a few hundred clients through the real service loop) =="
# Fails on dropped records, classification errors, sink write failures
# or a dead /healthz. Small enough (~10s including the daemon build) to
# run on every check; BENCH_load.json proper uses 10k+ clients.
go run ./cmd/qoeload -clients 300 -pool 20 -ramp 10s -classify-every 200ms \
	-settle 45s -out /tmp/qoeload-soak.json

echo "== qoeload fleet soak (2-instance consistent-hash ring: exactly-once coverage, SIGTERM-with-snapshot) =="
# Two daemons behind one ring, fed the identical workload: fails on any
# overlap or gap in client ownership (owned sums must cover the stream
# exactly once), a missing or unloadable shutdown snapshot, or an
# unclean exit. ~10s on top of the daemon build cached above.
go run ./cmd/qoeload -clients 300 -pool 20 -ramp 10s -classify-every 200ms \
	-shapes "" -instances 2 -settle 45s -out /tmp/qoeload-fleet.json

echo "All checks passed."
