#!/bin/sh
# Repo health gate: formatting, vet, the full test suite, and the race
# detector on the packages that train, evaluate or serve concurrently.
# Run from anywhere inside the repo; exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l . 2>/dev/null)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== doc lint (operator-facing packages) =="
go run ./scripts/doclint internal/sessionid internal/tlsproxy internal/squidlog internal/features internal/core internal/faultinject internal/ml/compiled internal/ingest internal/netflow internal/pcap

echo "== go test =="
go test ./...

echo "== go test -race (concurrent packages, incl. faultinject chaos tests and qoeproxy shard invariance) =="
go test -race ./internal/ml/... ./internal/dataset ./internal/tlsproxy ./internal/metrics ./internal/experiments ./internal/features ./internal/faultinject ./cmd/qoeproxy

echo "== feature benchmarks (smoke) =="
go test -run '^$' -bench Feature -benchtime 1x .

echo "== serving benchmarks (smoke: compiled scorers incl. batched sweep, sharded ingest) =="
go test -run '^$' -bench . -benchtime 1x ./internal/ml/compiled
go test -run '^$' -bench ConcurrentIngest -benchtime 100x ./cmd/qoeproxy

echo "== qoeproxy smoke (/metrics, /healthz, squid-log tail, SIGTERM drain) =="
go run ./scripts/smoke

echo "== qoeload soak (replay a few hundred clients through the real service loop) =="
# Fails on dropped records, classification errors, sink write failures
# or a dead /healthz. Small enough (~10s including the daemon build) to
# run on every check; BENCH_load.json proper uses 10k+ clients.
go run ./cmd/qoeload -clients 300 -pool 20 -ramp 10s -classify-every 200ms \
	-settle 45s -out /tmp/qoeload-soak.json

echo "All checks passed."
