// Command doclint enforces the repo's godoc contract on selected
// packages: every exported identifier — package, function, method,
// type, and each exported const/var — must carry a doc comment, so
// `go doc` reads correctly for the packages operators script against.
// It complements `go vet` (which checks comment placement, not
// presence).
//
// Usage: go run ./scripts/doclint <pkg-dir> [<pkg-dir>...]
// Exits non-zero listing every undocumented identifier.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint <pkg-dir> [<pkg-dir>...]")
		os.Exit(2)
	}
	failures := 0
	for _, dir := range os.Args[1:] {
		probs, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, p := range probs {
			fmt.Println(p)
		}
		failures += len(probs)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d undocumented exported identifiers\n", failures)
		os.Exit(1)
	}
}

// lintDir parses every non-test Go file of one package directory and
// returns a "file:line: message" entry per undocumented export.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var probs []string
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		probs = append(probs, fmt.Sprintf("%s:%d: %s", filepath.ToSlash(p.Filename), p.Line, fmt.Sprintf(format, args...)))
	}
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			probs = append(probs, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				lintDecl(decl, report)
			}
		}
	}
	return probs, nil
}

// lintDecl flags exported top-level declarations without doc comments.
// A grouped const/var/type block's doc covers its specs; an individual
// spec may also satisfy the rule with its own doc or trailing comment.
func lintDecl(decl ast.Decl, report func(token.Pos, string, ...any)) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return
		}
		if d.Recv != nil {
			// Skip methods on unexported receivers: they are not part of
			// the package's godoc surface.
			if !exportedReceiver(d.Recv) {
				return
			}
			report(d.Pos(), "exported method %s is undocumented", d.Name.Name)
			return
		}
		report(d.Pos(), "exported function %s is undocumented", d.Name.Name)
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch sp := spec.(type) {
			case *ast.TypeSpec:
				if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
					report(sp.Pos(), "exported type %s is undocumented", sp.Name.Name)
				}
			case *ast.ValueSpec:
				if d.Doc != nil || sp.Doc != nil || sp.Comment != nil {
					continue
				}
				for _, name := range sp.Names {
					if name.IsExported() {
						report(name.Pos(), "exported %s %s is undocumented", d.Tok, name.Name)
					}
				}
			}
		}
	}
}

// exportedReceiver reports whether a method receiver names an exported
// type (unwrapping pointers and generics).
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}
