// Command smoke is the CI gate for qoeproxy's service surface. It
// builds the daemon once and runs three scenarios: the proxy smoke
// (start on ephemeral ports, wait for the structured "metrics
// listening" log line, scrape /healthz and /metrics, assert every core
// series exists, SIGTERM, require a clean drain), the squid-tail
// smoke (daemon follows a generated access log, per-source ingest
// counters track lines appended mid-run, SIGTERM drains cleanly), and
// the model-reload smoke (daemon starts serving model A, rolls to
// model B via POST /admin/reload and again via SIGHUP with the reload
// counters tracking each swap, then a corrupt model file is rejected
// with the old model still serving). Run from the repo root:
//
//	go run ./scripts/smoke
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"droppackets/internal/core"
	"droppackets/internal/dataset"
	"droppackets/internal/has"
	"droppackets/internal/ml/forest"
	"droppackets/internal/qoe"
)

// coreSeries are the metric families operators alert on; docs/OPERATIONS.md
// documents each. The smoke run fails if any is missing from a scrape.
var coreSeries = []string{
	"qoeproxy_transactions_total",
	"qoeproxy_session_boundaries_total",
	"qoeproxy_classification_runs_total",
	"qoeproxy_classification_errors_total",
	"qoeproxy_sessions_truncated_total",
	"qoeproxy_sink_write_failures_total",
	"qoeproxy_clients_evicted_total",
	"qoeproxy_qoe_predictions_total",
	"qoeproxy_inference_seconds",
	"qoeproxy_feature_extraction_seconds",
	"qoeproxy_shard_classify_seconds",
	"qoeproxy_ingest_contention_total",
	"qoeproxy_cluster_clients_skipped_total",
	"qoeproxy_partitions_owned",
	"qoeproxy_feature_transactions_ingested_total",
	"qoeproxy_ingest_source_records_total",
	"qoeproxy_ingest_source_skipped_total",
	"qoeproxy_ingest_source_malformed_total",
	"qoeproxy_ingest_source_rotations_total",
	"qoeproxy_model_reloads_total",
	"qoeproxy_model_loaded_timestamp_seconds",
	"qoeproxy_shadow_disagreement_total",
	"qoeproxy_shadow_confusion_total",
	"qoeproxy_feature_drift_zscore",
	"qoeproxy_interned_strings",
	"qoeproxy_connections_total",
	"qoeproxy_connections_active",
	"qoeproxy_hello_parse_failures_total",
	"qoeproxy_resolve_failures_total",
	"qoeproxy_dial_failures_total",
	"qoeproxy_relayed_up_bytes_total",
	"qoeproxy_relayed_down_bytes_total",
	"qoeproxy_active_sessions",
	"qoeproxy_clients",
	"qoeproxy_uptime_seconds",
	"qoeproxy_gc_pause_seconds_total",
	"qoeproxy_gc_runs_total",
	"qoeproxy_heap_alloc_bytes_total",
	"qoeproxy_heap_inuse_bytes",
	"qoeproxy_goroutines",
}

func main() {
	tmp, err := os.MkdirTemp("", "qoeproxy-smoke")
	if err != nil {
		fmt.Fprintln(os.Stderr, "smoke: FAIL:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(tmp)
	bin := filepath.Join(tmp, "qoeproxy")
	build := exec.Command("go", "build", "-o", bin, "./cmd/qoeproxy")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "smoke: FAIL: building qoeproxy:", err)
		os.Exit(1)
	}

	if err := smokeProxy(bin); err != nil {
		fmt.Fprintln(os.Stderr, "smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("smoke: qoeproxy serves /metrics and /healthz and drains cleanly")
	if err := smokeSquidTail(bin, tmp); err != nil {
		fmt.Fprintln(os.Stderr, "smoke: FAIL: squid tail:", err)
		os.Exit(1)
	}
	fmt.Println("smoke: qoeproxy tails a Squid log with live per-source counters and drains cleanly")
	if err := smokeReload(bin, tmp); err != nil {
		fmt.Fprintln(os.Stderr, "smoke: FAIL: model reload:", err)
		os.Exit(1)
	}
	fmt.Println("smoke: qoeproxy hot-reloads models via /admin/reload and SIGHUP and rejects corrupt files")
}

// startDaemon launches the built daemon and returns it along with the
// metrics address from its "metrics listening" log line.
func startDaemon(bin string, args ...string) (*exec.Cmd, string, error) {
	daemon := exec.Command(bin, args...)
	stderr, err := daemon.StderrPipe()
	if err != nil {
		return nil, "", err
	}
	if err := daemon.Start(); err != nil {
		return nil, "", fmt.Errorf("starting qoeproxy: %w", err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			var entry struct {
				Msg  string `json:"msg"`
				Addr string `json:"addr"`
			}
			if json.Unmarshal(sc.Bytes(), &entry) == nil && entry.Msg == "metrics listening" {
				select {
				case addrCh <- entry.Addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return daemon, addr, nil
	case <-time.After(10 * time.Second):
		daemon.Process.Kill()
		return nil, "", fmt.Errorf("no 'metrics listening' log line within 10s")
	}
}

// stopDaemon sends SIGTERM and requires a clean exit within 10s.
func stopDaemon(daemon *exec.Cmd) error {
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- daemon.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("daemon did not exit cleanly on SIGTERM: %w", err)
		}
		return nil
	case <-time.After(10 * time.Second):
		daemon.Process.Kill()
		return fmt.Errorf("daemon did not drain within 10s of SIGTERM")
	}
}

// smokeProxy runs the serving-surface scenario; any error fails CI.
func smokeProxy(bin string) error {
	daemon, addr, err := startDaemon(bin,
		"-listen", "127.0.0.1:0",
		"-metrics", "127.0.0.1:0",
		"-upstream", "127.0.0.1:9", // never dialed: no traffic flows in the smoke
	)
	if err != nil {
		return err
	}
	defer daemon.Process.Kill() // no-op after a clean Wait

	health, err := get("http://" + addr + "/healthz")
	if err != nil {
		return err
	}
	var status struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal([]byte(health), &status); err != nil || status.Status != "ok" {
		return fmt.Errorf("healthz = %q (parse err %v)", health, err)
	}
	fmt.Println("smoke: /healthz ok")

	body, err := get("http://" + addr + "/metrics")
	if err != nil {
		return err
	}
	for _, series := range coreSeries {
		if !strings.Contains(body, "# TYPE "+series+" ") {
			return fmt.Errorf("scrape is missing core series %s:\n%s", series, body)
		}
	}
	fmt.Printf("smoke: /metrics exports all %d core series\n", len(coreSeries))

	return stopDaemon(daemon)
}

// squidConnectLine renders one CONNECT log line (epoch-0 offsets).
func squidConnectLine(end float64, elapsedMs int, client, host string, down int64) string {
	return fmt.Sprintf("%.3f %6d %s TCP_TUNNEL/200 %d CONNECT %s:443 - HIER_DIRECT/203.0.113.9 - request_bytes=400\n",
		end, elapsedMs, client, down, host)
}

// smokeSquidTail runs the log-ingest scenario: the daemon follows an
// access log (-source=squid), the per-source counters must reflect the
// initial lines, a skipped non-CONNECT line, and lines appended while
// the daemon runs, and SIGTERM must still drain cleanly.
func smokeSquidTail(bin, tmp string) error {
	logPath := filepath.Join(tmp, "access.log")
	initial := squidConnectLine(1.0, 800, "10.0.0.1", "cdn-01.svc1.example", 180000) +
		squidConnectLine(2.0, 500, "10.0.0.2", "cdn-02.svc1.example", 250000) +
		"3.000    100 10.0.0.3 TCP_MISS/200 1234 GET http://example.com/x - HIER_DIRECT/203.0.113.9 text/html\n" +
		squidConnectLine(4.0, 900, "10.0.0.1", "cdn-01.svc1.example", 90000)
	if err := os.WriteFile(logPath, []byte(initial), 0o644); err != nil {
		return err
	}

	daemon, addr, err := startDaemon(bin,
		"-metrics", "127.0.0.1:0",
		"-source", "squid",
		"-input", logPath,
		"-ingest-epoch", "0",
		"-ingest-horizon", "0s", // count entries as they are read, not at a watermark
	)
	if err != nil {
		return err
	}
	defer daemon.Process.Kill()

	records := `qoeproxy_ingest_source_records_total{source="squid"}`
	if err := waitSeries(addr, records, 3); err != nil {
		return err
	}
	if err := waitSeries(addr, `qoeproxy_ingest_source_skipped_total{source="squid"}`, 1); err != nil {
		return err
	}
	fmt.Println("smoke: squid tail ingested the initial log (3 records, 1 skipped)")

	f, err := os.OpenFile(logPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	more := squidConnectLine(5.0, 700, "10.0.0.2", "cdn-02.svc1.example", 120000) +
		squidConnectLine(6.0, 600, "10.0.0.3", "cdn-01.svc1.example", 70000)
	if _, err := f.WriteString(more); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := waitSeries(addr, records, 5); err != nil {
		return fmt.Errorf("after live append: %w", err)
	}
	if got := series(addr, "qoeproxy_transactions_total"); got != 5 {
		return fmt.Errorf("qoeproxy_transactions_total = %v, want 5", got)
	}
	fmt.Println("smoke: squid tail picked up lines appended while running")

	return stopDaemon(daemon)
}

// series scrapes one metric sample from the daemon, or -1 if absent.
// Labeled series are addressed by their full name{label="x"} form.
func series(addr, name string) float64 {
	body, err := get("http://" + addr + "/metrics")
	if err != nil {
		return -1
	}
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err == nil {
				return v
			}
		}
	}
	return -1
}

// waitSeries polls a series until it reaches want or 15s elapse.
func waitSeries(addr, name string, want float64) error {
	deadline := time.Now().Add(15 * time.Second)
	for {
		if got := series(addr, name); got == want {
			return nil
		} else if time.Now().After(deadline) {
			return fmt.Errorf("%s = %v, want %v", name, got, want)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// trainedModel trains a small estimator on the synthetic corpus and
// returns its saved-model bytes; seed/trees differentiate models so a
// reload observably changes what is serving.
func trainedModel(seed int64, trees int) ([]byte, error) {
	corpus, err := dataset.Build(dataset.Config{Seed: 5, Sessions: 40}, has.Svc1())
	if err != nil {
		return nil, err
	}
	var training []core.TrainingSession
	for _, r := range corpus.Records {
		training = append(training, core.TrainingSession{TLS: r.Capture.TLS, QoE: r.QoE})
	}
	est := core.NewEstimator(core.Config{Metric: qoe.MetricCombined, Forest: forest.Config{NumTrees: trees, Seed: seed}})
	if err := est.Train(training); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := est.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// smokeReload runs the model-lifecycle scenario: the daemon starts
// with model A, swaps to model B over the admin endpoint and again via
// SIGHUP, and a corrupt file is rejected with 422 while the previous
// model keeps serving and the daemon stays healthy.
func smokeReload(bin, tmp string) error {
	modelA, err := trainedModel(3, 8)
	if err != nil {
		return err
	}
	modelB, err := trainedModel(17, 4)
	if err != nil {
		return err
	}
	modelPath := filepath.Join(tmp, "model.json")
	if err := os.WriteFile(modelPath, modelA, 0o644); err != nil {
		return err
	}

	daemon, addr, err := startDaemon(bin,
		"-listen", "127.0.0.1:0",
		"-metrics", "127.0.0.1:0",
		"-upstream", "127.0.0.1:9",
		"-model", modelPath,
	)
	if err != nil {
		return err
	}
	defer daemon.Process.Kill()

	if got := series(addr, "qoeproxy_model_loaded_timestamp_seconds"); got <= 0 {
		return fmt.Errorf("qoeproxy_model_loaded_timestamp_seconds = %v at startup with -model, want > 0", got)
	}

	// Roll A -> B over the admin plane.
	if err := os.WriteFile(modelPath, modelB, 0o644); err != nil {
		return err
	}
	code, body, err := post("http://" + addr + "/admin/reload")
	if err != nil {
		return err
	}
	if code != http.StatusOK || !strings.Contains(body, `"result":"ok"`) {
		return fmt.Errorf("POST /admin/reload = %d %q, want 200 with result ok", code, body)
	}
	if err := waitSeries(addr, `qoeproxy_model_reloads_total{result="ok"}`, 1); err != nil {
		return err
	}
	fmt.Println("smoke: POST /admin/reload swapped model A for model B")

	// Roll back B -> A via SIGHUP.
	if err := os.WriteFile(modelPath, modelA, 0o644); err != nil {
		return err
	}
	if err := daemon.Process.Signal(syscall.SIGHUP); err != nil {
		return err
	}
	if err := waitSeries(addr, `qoeproxy_model_reloads_total{result="ok"}`, 2); err != nil {
		return fmt.Errorf("after SIGHUP: %w", err)
	}
	fmt.Println("smoke: SIGHUP reloaded the model file")

	// A corrupt file must be rejected with the old model untouched.
	if err := os.WriteFile(modelPath, []byte("{not a model"), 0o644); err != nil {
		return err
	}
	code, body, err = post("http://" + addr + "/admin/reload")
	if err != nil {
		return err
	}
	if code != http.StatusUnprocessableEntity || !strings.Contains(body, `"result":"error"`) {
		return fmt.Errorf("corrupt reload = %d %q, want 422 with result error", code, body)
	}
	if err := waitSeries(addr, `qoeproxy_model_reloads_total{result="error"}`, 1); err != nil {
		return err
	}
	if got := series(addr, `qoeproxy_model_reloads_total{result="ok"}`); got != 2 {
		return fmt.Errorf("ok reloads after corrupt attempt = %v, want still 2", got)
	}
	health, err := get("http://" + addr + "/healthz")
	if err != nil {
		return fmt.Errorf("daemon unhealthy after rejected reload: %w", err)
	}
	var status struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal([]byte(health), &status); err != nil || status.Status != "ok" {
		return fmt.Errorf("healthz after rejected reload = %q (parse err %v)", health, err)
	}
	fmt.Println("smoke: corrupt model rejected with 422; previous model still serving")

	return stopDaemon(daemon)
}

// post sends an empty POST with a deadline and returns status + body.
func post(url string) (int, string, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Post(url, "application/json", nil)
	if err != nil {
		return 0, "", fmt.Errorf("POST %s: %w", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", err
	}
	return resp.StatusCode, string(body), nil
}

// get fetches a URL with a deadline and returns the body.
func get(url string) (string, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return "", fmt.Errorf("GET %s: %w", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(body), nil
}
