// Command smoke is the CI gate for qoeproxy's service surface: it
// builds the daemon, starts it on ephemeral ports, waits for the
// structured "metrics listening" log line, scrapes /healthz and
// /metrics, asserts every core series exists, then sends SIGTERM and
// requires a clean (exit 0) drain. Run from the repo root:
//
//	go run ./scripts/smoke
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

// coreSeries are the metric families operators alert on; docs/OPERATIONS.md
// documents each. The smoke run fails if any is missing from a scrape.
var coreSeries = []string{
	"qoeproxy_transactions_total",
	"qoeproxy_session_boundaries_total",
	"qoeproxy_classification_runs_total",
	"qoeproxy_classification_errors_total",
	"qoeproxy_sessions_truncated_total",
	"qoeproxy_sink_write_failures_total",
	"qoeproxy_clients_evicted_total",
	"qoeproxy_qoe_predictions_total",
	"qoeproxy_inference_seconds",
	"qoeproxy_feature_extraction_seconds",
	"qoeproxy_shard_classify_seconds",
	"qoeproxy_ingest_contention_total",
	"qoeproxy_feature_transactions_ingested_total",
	"qoeproxy_connections_total",
	"qoeproxy_connections_active",
	"qoeproxy_hello_parse_failures_total",
	"qoeproxy_resolve_failures_total",
	"qoeproxy_dial_failures_total",
	"qoeproxy_relayed_up_bytes_total",
	"qoeproxy_relayed_down_bytes_total",
	"qoeproxy_active_sessions",
	"qoeproxy_clients",
	"qoeproxy_uptime_seconds",
	"qoeproxy_gc_pause_seconds_total",
	"qoeproxy_gc_runs_total",
	"qoeproxy_heap_alloc_bytes_total",
	"qoeproxy_heap_inuse_bytes",
	"qoeproxy_goroutines",
}

func main() {
	if err := smoke(); err != nil {
		fmt.Fprintln(os.Stderr, "smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("smoke: qoeproxy serves /metrics and /healthz and drains cleanly")
}

// smoke runs the whole scenario; any error fails CI.
func smoke() error {
	tmp, err := os.MkdirTemp("", "qoeproxy-smoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	bin := filepath.Join(tmp, "qoeproxy")
	build := exec.Command("go", "build", "-o", bin, "./cmd/qoeproxy")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building qoeproxy: %w", err)
	}

	daemon := exec.Command(bin,
		"-listen", "127.0.0.1:0",
		"-metrics", "127.0.0.1:0",
		"-upstream", "127.0.0.1:9", // never dialed: no traffic flows in the smoke
	)
	stderr, err := daemon.StderrPipe()
	if err != nil {
		return err
	}
	if err := daemon.Start(); err != nil {
		return fmt.Errorf("starting qoeproxy: %w", err)
	}
	defer daemon.Process.Kill() // no-op after a clean Wait

	// The daemon logs JSON lines; the "metrics listening" one carries
	// the ephemeral address to scrape.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			var entry struct {
				Msg  string `json:"msg"`
				Addr string `json:"addr"`
			}
			if json.Unmarshal(sc.Bytes(), &entry) == nil && entry.Msg == "metrics listening" {
				select {
				case addrCh <- entry.Addr:
				default:
				}
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(10 * time.Second):
		return fmt.Errorf("no 'metrics listening' log line within 10s")
	}

	health, err := get("http://" + addr + "/healthz")
	if err != nil {
		return err
	}
	var status struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal([]byte(health), &status); err != nil || status.Status != "ok" {
		return fmt.Errorf("healthz = %q (parse err %v)", health, err)
	}
	fmt.Println("smoke: /healthz ok")

	body, err := get("http://" + addr + "/metrics")
	if err != nil {
		return err
	}
	for _, series := range coreSeries {
		if !strings.Contains(body, "# TYPE "+series+" ") {
			return fmt.Errorf("scrape is missing core series %s:\n%s", series, body)
		}
	}
	fmt.Printf("smoke: /metrics exports all %d core series\n", len(coreSeries))

	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- daemon.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("daemon did not exit cleanly on SIGTERM: %w", err)
		}
	case <-time.After(10 * time.Second):
		return fmt.Errorf("daemon did not drain within 10s of SIGTERM")
	}
	return nil
}

// get fetches a URL with a deadline and returns the body.
func get(url string) (string, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return "", fmt.Errorf("GET %s: %w", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(body), nil
}
